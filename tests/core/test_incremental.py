"""IncrementalMiner: delta maintenance must be invisible in the output.

The contract under test: after ANY sequence of appends and retires, the
mined itemsets (and their exact counts) equal a cold re-mine of the
current window by the sequential Apriori oracle.  On top of parity, the
update-path tests pin *which* mechanism handled each update — pure delta
pass, border-bounded level re-mine, or the full re-encode fallback —
since a miner that silently full-rebuilds on every append would pass
parity while defeating the point.
"""

import random

import pytest

from repro.common.errors import MiningError
from repro.core.incremental import FamilyDiff, IncrementalMiner, run_incremental
from repro.core.registry import MiningConfig, run_algorithm
from repro.datasets import mushroom_like, quest_generator
from repro.engine import Context

STORES = ["hashtree", "trie", "flatdict", "bitmap", "linear"]


def oracle(txns, min_support, max_length=None):
    cfg = MiningConfig(
        min_support=min_support, algorithm="apriori", max_length=max_length
    )
    return run_algorithm(txns, cfg).itemsets


@pytest.fixture(scope="module")
def sparse_pool():
    ds = quest_generator(
        n_transactions=220, n_items=30, avg_transaction_size=6.0,
        n_patterns=12, seed=7,
    )
    return [tuple(t) for t in ds.transactions]


# Hand-built window where every count is easy to reason about:
# a=8, b=8, c=12 of 12; at min_support=0.5 (threshold 6) the level-2
# family is {ac, bc} with {ab} (count 4) on the negative border.
BORDER_BASE = (
    [("a", "b", "c")] * 4 + [("a", "c")] * 4 + [("b", "c")] * 4
)


class TestColdBuild:
    @pytest.mark.parametrize("store", STORES)
    def test_build_matches_oracle(self, sparse_pool, store):
        window = sparse_pool[:120]
        miner = IncrementalMiner(window, 0.08, candidate_store=store)
        assert miner.itemsets() == oracle(window, 0.08)

    def test_build_update_stats(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        upd = miner.last_update
        assert upd.kind == "build"
        assert upd.n_transactions == len(BORDER_BASE)
        assert upd.version == 1
        assert upd.threshold == miner.threshold == 6
        assert upd.levels_remined >= 1 and upd.levels_delta == 0
        assert miner.negative_border(2) and not miner.full_rebuilds

    def test_max_length_respected(self, sparse_pool):
        window = sparse_pool[:120]
        miner = IncrementalMiner(window, 0.08, max_length=2)
        assert miner.itemsets() == oracle(window, 0.08, max_length=2)
        assert all(len(s) <= 2 for s in miner.itemsets())

    def test_empty_window_rejected(self):
        with pytest.raises(MiningError):
            IncrementalMiner([], 0.5)

    def test_bad_support_rejected(self):
        with pytest.raises(MiningError):
            IncrementalMiner(BORDER_BASE, 0.0)


class TestUpdateMechanisms:
    def test_pure_delta_append(self):
        """Re-appending existing rows shifts no family: every level must
        stay current via its warm store's delta pass alone."""
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        upd = miner.append(BORDER_BASE)
        assert miner.itemsets() == oracle(BORDER_BASE * 2, 0.5)
        assert not upd.full_rebuild
        assert upd.levels_remined == 0 and upd.levels_delta >= 1
        assert upd.delta_candidates > 0 and upd.full_candidates == 0
        assert all(e["mode"] == "delta" for e in upd.per_level)

    def test_border_crossing_remines_levels_above(self):
        """Pushing border itemset (a, b) over the threshold changes the
        level-2 family, so level 3 must be regenerated — and the newly
        reachable (a, b, c) must be counted over the full window."""
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        assert ("a", "b") not in miner.itemsets()
        upd = miner.append([("a", "b", "c")] * 4)
        got = miner.itemsets()
        assert got == oracle(BORDER_BASE + [("a", "b", "c")] * 4, 0.5)
        assert got[("a", "b")] == 8 and got[("a", "b", "c")] == 8
        assert not upd.full_rebuild
        assert upd.levels_delta >= 1  # level 2 rode its delta pass
        assert upd.levels_remined >= 1  # level 3 was regenerated
        assert upd.full_candidates > 0  # ...and (a,b,c) took a full pass

    def test_retire_lowers_threshold_and_crosses_border(self):
        """Retiring rows shrinks the window, so a border itemset whose
        count never moved can cross *upward* — retire must re-threshold."""
        window = (
            [("a",)] * 3 + [("b",)] * 3 + [("a", "b")] * 4
            + [("a",)] * 2 + [("b",)] * 2
        )
        miner = IncrementalMiner(window, 0.5)
        assert ("a", "b") not in miner.itemsets()  # 4 < ceil(14/2)
        upd = miner.retire(6)
        assert upd.kind == "retire" and not upd.full_rebuild
        got = miner.itemsets()
        assert got == oracle(window[6:], 0.5)
        assert got[("a", "b")] == 4  # count unchanged, threshold now 4
        assert miner.n_transactions == 8

    def test_new_frequent_singleton_forces_full_rebuild(self):
        """An item absent from the dictionary was dropped from every
        encoded row — once it turns frequent, only a re-encode can
        recover its co-occurrences (the acceptance-required fallback)."""
        base = [("a", "b")] * 6 + [("a",)] * 2
        miner = IncrementalMiner(base, 0.5)
        delta = [("z", "a")] * 8
        upd = miner.append(delta)
        assert upd.full_rebuild
        assert "z" in upd.rebuild_reason
        assert miner.full_rebuilds == 1
        got = miner.itemsets()
        assert got == oracle(base + delta, 0.5)
        assert got[("a", "z")] == 8

    def test_infrequent_dropout_needs_no_rebuild(self):
        """The reverse shift — a dictionary item going infrequent — must
        NOT rebuild: its codes simply leave level 1."""
        base = [("a", "b")] * 6 + [("a",)] * 2
        miner = IncrementalMiner(base, 0.5)
        upd = miner.append([("a",)] * 8)  # b: 6 of 16 < threshold 8
        assert not upd.full_rebuild
        got = miner.itemsets()
        assert got == oracle(base + [("a",)] * 8, 0.5)
        assert ("b",) not in got

    def test_noop_updates(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        before = miner.itemsets()
        assert miner.append([]).n_delta == 0
        assert miner.retire(0).n_delta == 0
        assert miner.itemsets() == before
        with pytest.raises(MiningError):
            miner.retire(len(BORDER_BASE))

    def test_version_and_threshold_tracking(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        v0 = miner.version
        upd = miner.append([("a", "c")] * 2)
        assert miner.version == v0 + 1 == upd.version
        assert upd.n_transactions == miner.n_transactions == 14
        assert upd.threshold == miner.threshold == 7

    def test_negative_border_level_one(self):
        miner = IncrementalMiner(BORDER_BASE + [("d",)], 0.5)
        assert ("d",) in miner.negative_border(1)
        assert miner.negative_border(2).isdisjoint(
            set(lvl for lvl in miner.itemsets() if len(lvl) == 2)
        )


class TestRandomizedOracleParity:
    """The acceptance grid: random append/retire sequences, every store,
    every backend, always byte-identical to a cold oracle re-mine."""

    @pytest.mark.parametrize("store", STORES)
    def test_random_sequences_every_store(self, sparse_pool, store):
        rng = random.Random(hash(store) & 0xFFFF)
        window = list(sparse_pool[:100])
        cursor = 100
        miner = IncrementalMiner(window, 0.08, candidate_store=store)
        for _ in range(6):
            if cursor < len(sparse_pool) and (len(window) < 40 or rng.random() < 0.6):
                n = rng.randint(1, min(20, len(sparse_pool) - cursor))
                delta = sparse_pool[cursor:cursor + n]
                cursor += n
                window.extend(delta)
                miner.append(delta)
            else:
                n = rng.randint(1, max(1, len(window) // 4))
                del window[:n]
                miner.retire(n)
            assert miner.itemsets() == oracle(window, 0.08)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_engine_backed_full_passes(self, sparse_pool, backend):
        """With a ctx attached, full-window passes (build + rebuild +
        border re-mines) run as engine jobs; parity must survive all
        three backends."""
        window = list(sparse_pool[:80])
        with Context(backend=backend, parallelism=2) as ctx:
            miner = IncrementalMiner(
                window, 0.08, candidate_store="bitmap",
                num_partitions=2, ctx=ctx,
            )
            delta = sparse_pool[80:110]
            window.extend(delta)
            miner.append(delta)
            assert miner.itemsets() == oracle(window, 0.08)
            del window[:25]
            miner.retire(25)
            assert miner.itemsets() == oracle(window, 0.08)

    def test_dense_dataset_parity(self):
        ds = mushroom_like(scale=0.02, seed=11)
        window = [tuple(t) for t in ds.transactions]
        base, delta = window[:-8], window[-8:]
        miner = IncrementalMiner(base, 0.4, max_length=3)
        miner.append(delta)
        assert miner.itemsets() == oracle(window, 0.4, max_length=3)


class TestResultAndRegistry:
    def test_result_shape(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        miner.append(BORDER_BASE)
        result = miner.result()
        assert result.algorithm == "incremental"
        assert result.itemsets == miner.itemsets()
        assert result.n_transactions == miner.n_transactions
        assert result.iterations[0].k == 1
        assert result.iterations[0].n_candidates == 3  # a, b, c
        lvl2 = result.iterations[1]
        assert lvl2.delta_rows > 0 and lvl2.delta_candidates > 0

    def test_config_dispatch_matches_exact_miners(self, sparse_pool):
        window = sparse_pool[:120]
        cfg = MiningConfig(min_support=0.08, incremental=True, backend="serial")
        got = run_algorithm(window, cfg).itemsets
        assert got == oracle(window, 0.08)

    def test_run_incremental_store_resolution(self, sparse_pool):
        window = sparse_pool[:60]
        cfg = MiningConfig(
            min_support=0.1, incremental=True,
            options={"candidate_store": "trie"},
        )
        assert run_incremental(None, window, cfg).itemsets == oracle(window, 0.1)
        cfg2 = MiningConfig(
            min_support=0.1, incremental=True, candidate_store="flatdict"
        )
        assert run_incremental(None, window, cfg2).itemsets == oracle(window, 0.1)


class TestFamilyDiff:
    """The change-feed primitive: diffs must be exact, composable, and
    replayable — applying the fold of any transition chain to the first
    family must land on the last one."""

    def test_between_partitions_the_change(self):
        old = {("a",): 8, ("b",): 8, ("a", "b"): 6}
        new = {("a",): 10, ("c",): 7, ("a", "b"): 6}
        diff = FamilyDiff.between(old, new)
        assert diff.added == {("c",): 7}
        assert diff.removed == {("b",): 8}
        assert diff.changed == {("a",): (8, 10)}
        assert diff.apply(old) == new

    def test_identical_families_diff_empty(self):
        fam = {("a",): 3}
        assert FamilyDiff.between(fam, fam).is_empty

    def test_compose_cancels_add_then_remove(self):
        a = {("x",): 5}
        b = {("x",): 5, ("y",): 4}
        d1 = FamilyDiff.between(a, b)      # adds y
        d2 = FamilyDiff.between(b, a)      # removes y
        folded = FamilyDiff.compose([d1, d2])
        assert folded.is_empty

    def test_compose_collapses_changed_chains(self):
        fams = [
            {("x",): 5},
            {("x",): 7},
            {("x",): 9, ("y",): 4},
            {("y",): 6},
        ]
        diffs = [
            FamilyDiff.between(fams[i], fams[i + 1])
            for i in range(len(fams) - 1)
        ]
        folded = FamilyDiff.compose(diffs)
        assert folded.apply(fams[0]) == fams[-1]
        assert folded.added == {("y",): 6}
        assert folded.removed == {("x",): 5}
        assert folded.changed == {}

    def test_miner_emits_diffs_on_append_and_retire(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5)
        assert miner.last_update.family_diff is None  # builds don't diff
        before = dict(miner.itemsets())
        miner.append([("a", "b")] * 4)
        diff = miner.last_update.family_diff
        assert diff is not None
        assert diff.apply(before) == miner.itemsets()
        mid = dict(miner.itemsets())
        miner.retire(4)
        rdiff = miner.last_update.family_diff
        assert rdiff is not None
        assert rdiff.apply(mid) == miner.itemsets()

    def test_diff_tracking_can_be_disabled(self):
        miner = IncrementalMiner(BORDER_BASE, 0.5, track_family_diff=False)
        miner.append([("a", "c")] * 2)
        assert miner.last_update.family_diff is None

    def test_randomized_transition_chain_replays(self, sparse_pool):
        rng = random.Random(11)
        window = list(sparse_pool[:80])
        miner = IncrementalMiner(window, 0.1)
        start = dict(miner.itemsets())
        diffs = []
        cursor = 80
        for _ in range(10):
            if rng.random() < 0.6 and cursor < len(sparse_pool):
                step = rng.randint(1, 12)
                miner.append(sparse_pool[cursor:cursor + step])
                cursor += step
            elif miner.n_transactions > 20:
                miner.retire(rng.randint(1, 8))
            else:
                continue
            diffs.append(miner.last_update.family_diff)
        assert all(d is not None for d in diffs)
        assert FamilyDiff.compose(diffs).apply(start) == miner.itemsets()
