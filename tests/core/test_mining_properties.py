"""Property-based cross-checks of the parallel miners against the oracles."""

from itertools import combinations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import fpgrowth
from repro.core import DistEclat, Yafim
from repro.core.hashtree import HashTree
from repro.engine import Context

_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

transactions_strategy = st.lists(
    st.lists(st.integers(0, 9), min_size=1, max_size=6),
    min_size=1,
    max_size=20,
)
support_strategy = st.floats(0.1, 1.0)


class TestParallelMinersMatchOracle:
    @_settings
    @given(transactions_strategy, support_strategy, st.integers(1, 4))
    def test_yafim_matches_fpgrowth(self, txns, sup, partitions):
        want = fpgrowth(txns, sup)
        with Context(backend="serial") as ctx:
            got = Yafim(ctx, num_partitions=partitions).run(txns, sup).itemsets
        assert got == want

    @_settings
    @given(transactions_strategy, support_strategy, st.integers(1, 4))
    def test_dist_eclat_matches_fpgrowth(self, txns, sup, partitions):
        want = fpgrowth(txns, sup)
        with Context(backend="serial") as ctx:
            got = DistEclat(ctx, num_partitions=partitions).run(txns, sup).itemsets
        assert got == want

    @_settings
    @given(transactions_strategy, support_strategy)
    def test_yafim_output_downward_closed(self, txns, sup):
        with Context(backend="serial") as ctx:
            got = Yafim(ctx).run(txns, sup).itemsets
        for itemset, count in got.items():
            for r in range(1, len(itemset)):
                for sub in combinations(itemset, r):
                    assert sub in got
                    assert got[sub] >= count

    @_settings
    @given(transactions_strategy, support_strategy, st.integers(1, 3))
    def test_yafim_max_length_is_prefix_of_full(self, txns, sup, cap):
        with Context(backend="serial") as ctx:
            capped = Yafim(ctx).run(txns, sup, max_length=cap).itemsets
        with Context(backend="serial") as ctx:
            full = Yafim(ctx).run(txns, sup).itemsets
        assert capped == {k: v for k, v in full.items() if len(k) <= cap}

    @_settings
    @given(
        transactions_strategy,
        support_strategy,
        st.sampled_from([2, 8, 64]),
        st.sampled_from([1, 4, 32]),
    )
    def test_yafim_hash_tree_shape_irrelevant(self, txns, sup, fanout, leaf):
        want = fpgrowth(txns, sup)
        with Context(backend="serial") as ctx:
            got = Yafim(
                ctx, hash_tree_fanout=fanout, hash_tree_leaf_size=leaf
            ).run(txns, sup).itemsets
        assert got == want


class TestHashTreeVsOracleCounting:
    @_settings
    @given(
        st.lists(st.lists(st.integers(0, 12), min_size=3, max_size=8), min_size=1, max_size=15),
        st.integers(2, 4),
    )
    def test_tree_counting_equals_direct_counting(self, raw_txns, k):
        """Counting candidate occurrences through the tree must equal the
        brute-force definition of support for every candidate."""
        txns = [tuple(sorted(set(t))) for t in raw_txns]
        items = sorted({i for t in txns for i in t})
        if len(items) < k:
            return
        candidates = list(combinations(items, k))[:80]
        tree = HashTree(candidates, fanout=8, max_leaf_size=2)
        counts: dict = {}
        for t in txns:
            for cand in tree.subset(t):
                counts[cand] = counts.get(cand, 0) + 1
        for cand in candidates:
            want = sum(1 for t in txns if set(cand) <= set(t))
            assert counts.get(cand, 0) == want
