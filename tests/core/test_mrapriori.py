"""MRApriori + SPC/FPC/DPC tests."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core import DPC, FPC, SPC, MRApriori
from repro.core.mrapriori import dpc_strategy, fpc_strategy, spc_strategy
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 8


@pytest.fixture()
def dfs(tmp_path):
    with MiniDfs(root_dir=str(tmp_path), n_datanodes=3, block_size=512, replication=1) as d:
        d.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
        yield d


@pytest.fixture()
def runner(dfs):
    return JobRunner(dfs)


ORACLE = apriori(TXNS, 0.4)


class TestMRApriori:
    def test_matches_oracle(self, runner):
        got = MRApriori(runner).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE
        assert got.n_transactions == len(TXNS)

    def test_one_job_per_level(self, runner):
        got = MRApriori(runner).run("/t.txt", 0.4)
        # SPC behaviour: a real job (with stage records) for every level
        assert all(it.stage_records for it in got.iterations)
        assert runner.jobs_run == len(got.iterations)

    def test_per_level_hdfs_io(self, runner):
        got = MRApriori(runner).run("/t.txt", 0.4)
        for it in got.iterations:
            assert it.hdfs_read_bytes > 0, f"pass {it.k} read nothing from DFS"
            assert it.hdfs_write_bytes > 0, f"pass {it.k} wrote nothing to DFS"

    def test_flat_matcher_agrees(self, runner):
        got = MRApriori(runner, use_hash_tree=False).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE

    def test_max_length(self, runner):
        got = MRApriori(runner).run("/t.txt", 0.4, max_length=2)
        assert got.max_level == 2
        assert got.itemsets == {k: v for k, v in ORACLE.items() if len(k) <= 2}

    def test_invalid_support(self, runner):
        with pytest.raises(MiningError):
            MRApriori(runner).run("/t.txt", 0.0)

    def test_reruns_use_fresh_output_dirs(self, runner):
        mr = MRApriori(runner)
        first = mr.run("/t.txt", 0.4)
        second = mr.run("/t.txt", 0.4)
        assert first.itemsets == second.itemsets

    def test_custom_reducer_count(self, runner):
        got = MRApriori(runner, num_reducers=5).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE

    def test_threaded_runner_agrees(self, dfs):
        got = MRApriori(JobRunner(dfs, backend="threads", parallelism=3)).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE


class TestVariants:
    def test_spc_equals_mrapriori_jobs(self, runner):
        got = SPC(runner).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE
        assert got.algorithm == "spc"

    @pytest.mark.parametrize("passes", [2, 3, 5])
    def test_fpc_agrees_with_fewer_jobs(self, dfs, passes):
        runner = JobRunner(dfs)
        spc_jobs_baseline = JobRunner(dfs)
        spc = SPC(spc_jobs_baseline).run("/t.txt", 0.4)
        fpc = FPC(runner, passes=passes).run("/t.txt", 0.4)
        assert fpc.itemsets == ORACLE
        assert runner.jobs_run < spc_jobs_baseline.jobs_run

    def test_fpc_counts_speculative_candidates(self, runner):
        fpc = FPC(runner, passes=3).run("/t.txt", 0.4)
        spc = SPC(JobRunner(runner.dfs)).run("/t.txt", 0.4)
        fpc_cands = sum(it.n_candidates for it in fpc.iterations if it.n_candidates > 0)
        spc_cands = sum(it.n_candidates for it in spc.iterations if it.n_candidates > 0)
        assert fpc_cands >= spc_cands  # speculation is never cheaper in candidates

    def test_dpc_agrees(self, runner):
        got = DPC(runner, candidate_budget=10).run("/t.txt", 0.4)
        assert got.itemsets == ORACLE

    def test_dpc_large_budget_combines(self, dfs):
        small = JobRunner(dfs)
        DPC(small, candidate_budget=1).run("/t.txt", 0.4)
        big = JobRunner(dfs)
        DPC(big, candidate_budget=10_000_000).run("/t.txt", 0.4)
        assert big.jobs_run <= small.jobs_run

    def test_invalid_params(self, runner):
        with pytest.raises(ValueError):
            FPC(runner, passes=0)
        with pytest.raises(ValueError):
            DPC(runner, candidate_budget=0)

    def test_strategies(self):
        assert spc_strategy(3, {("a",): 1}) == 1
        assert fpc_strategy(4)(3, {}) == 4
        assert dpc_strategy(10)(3, {("a", "b"): 5}) >= 1


class TestAgainstYafim:
    def test_identical_results(self, dfs):
        """The paper: 'all the experimental results of YAFIM are exactly
        same as MRApriori'."""
        from repro.core import Yafim
        from repro.engine import Context

        mr = MRApriori(JobRunner(dfs)).run("/t.txt", 0.4)
        with Context(backend="serial") as ctx:
            ya = Yafim(ctx).run_text_file(dfs, "/t.txt", 0.4)
        assert ya.itemsets == mr.itemsets
