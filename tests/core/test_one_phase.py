"""One-phase MapReduce FIM tests."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core import SPC
from repro.core.one_phase import OnePhaseMR
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 6


@pytest.fixture()
def dfs(tmp_path):
    with MiniDfs(root_dir=str(tmp_path), n_datanodes=3, block_size=512, replication=1) as d:
        d.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
        yield d


class TestOnePhase:
    def test_matches_oracle_up_to_cap(self, dfs):
        got = OnePhaseMR(JobRunner(dfs), max_length=3).run("/t.txt", 0.4)
        want = {k: v for k, v in apriori(TXNS, 0.4).items() if len(k) <= 3}
        assert got.itemsets == want
        assert got.n_transactions == len(TXNS)

    def test_single_job(self, dfs):
        runner = JobRunner(dfs)
        OnePhaseMR(runner, max_length=2).run("/t.txt", 0.4)
        assert runner.jobs_run == 1

    def test_matches_spc(self, dfs):
        cap = 3
        one = OnePhaseMR(JobRunner(dfs), max_length=cap).run("/t.txt", 0.4)
        spc = SPC(JobRunner(dfs)).run("/t.txt", 0.4, max_length=cap)
        assert one.itemsets == spc.itemsets

    def test_counts_far_more_than_spc(self, dfs):
        """The paper's criticism: one-phase counts every subset, k-phase
        only counts candidates surviving apriori_gen."""
        cap = 3
        one = OnePhaseMR(JobRunner(dfs), max_length=cap).run("/t.txt", 0.4)
        spc = SPC(JobRunner(dfs)).run("/t.txt", 0.4, max_length=cap)
        one_counted = one.iterations[0].n_candidates
        spc_counted = sum(
            it.n_candidates for it in spc.iterations if it.n_candidates > 0
        )
        assert one_counted > 2 * spc_counted

    def test_shuffle_volume_blowup(self, dfs):
        cap = 3
        one = OnePhaseMR(JobRunner(dfs), max_length=cap).run("/t.txt", 0.4)
        spc = SPC(JobRunner(dfs)).run("/t.txt", 0.4, max_length=cap)
        spc_shuffle = sum(it.shuffle_bytes for it in spc.iterations)
        assert one.iterations[0].shuffle_bytes > spc_shuffle

    def test_invalid_params(self, dfs):
        with pytest.raises(MiningError):
            OnePhaseMR(JobRunner(dfs), max_length=0)
        with pytest.raises(MiningError):
            OnePhaseMR(JobRunner(dfs)).run("/t.txt", 0.0)

    def test_reruns(self, dfs):
        miner = OnePhaseMR(JobRunner(dfs), max_length=2)
        a = miner.run("/t.txt", 0.4)
        b = miner.run("/t.txt", 0.4)
        assert a.itemsets == b.itemsets
