"""Parallel rule generation must match the sequential implementation."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.rules import generate_rules, generate_rules_parallel
from repro.datasets import medical_cases
from repro.engine import Context

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 4


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


class TestParallelRules:
    @pytest.mark.parametrize("conf,lift", [(0.0, 0.0), (0.7, 0.0), (0.5, 1.1)])
    def test_matches_sequential(self, ctx, conf, lift):
        itemsets = apriori(TXNS, 0.4)
        seq = generate_rules(itemsets, len(TXNS), min_confidence=conf, min_lift=lift)
        par = generate_rules_parallel(
            ctx, itemsets, len(TXNS), min_confidence=conf, min_lift=lift
        )
        assert par == seq

    def test_larger_workload(self, ctx):
        ds = medical_cases(n_cases=400, seed=2)
        itemsets = apriori(ds.transactions, 0.05)
        seq = generate_rules(itemsets, ds.n_transactions, min_confidence=0.6)
        par = generate_rules_parallel(
            ctx, itemsets, ds.n_transactions, min_confidence=0.6, num_partitions=6
        )
        assert par == seq

    def test_no_multi_itemsets(self, ctx):
        assert generate_rules_parallel(ctx, {("a",): 5}, 10) == []

    def test_threads_backend(self):
        itemsets = apriori(TXNS, 0.4)
        with Context(backend="threads", parallelism=4) as ctx:
            par = generate_rules_parallel(ctx, itemsets, len(TXNS), min_confidence=0.5)
        assert par == generate_rules(itemsets, len(TXNS), min_confidence=0.5)

    def test_non_closed_map_raises(self, ctx):
        from repro.common.errors import TaskFailedError

        with pytest.raises((MiningError, TaskFailedError)):
            generate_rules_parallel(ctx, {("a", "b"): 3}, 10)

    def test_invalid_params(self, ctx):
        with pytest.raises(MiningError):
            generate_rules_parallel(ctx, {}, 0)
        with pytest.raises(MiningError):
            generate_rules_parallel(ctx, {}, 5, min_confidence=2.0)

    def test_broadcast_used(self, ctx):
        itemsets = apriori(TXNS, 0.4)
        generate_rules_parallel(ctx, itemsets, len(TXNS))
        assert ctx.broadcast_manager.transfers > 0
