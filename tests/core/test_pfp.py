"""PFP (Parallel FP-Growth) tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import apriori, fpgrowth
from repro.common.errors import MiningError
from repro.core.pfp import PFP
from repro.datasets import medical_cases, mushroom_like, retail_like
from repro.engine import Context

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 6


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


class TestCorrectness:
    def test_matches_oracle(self, ctx):
        assert PFP(ctx).run(TXNS, 0.4).itemsets == apriori(TXNS, 0.4)

    @pytest.mark.parametrize("n_groups", [1, 2, 3, 7, 50])
    def test_group_count_irrelevant(self, ctx, n_groups):
        got = PFP(ctx, n_groups=n_groups).run(TXNS, 0.4).itemsets
        assert got == apriori(TXNS, 0.4)

    def test_max_length(self, ctx):
        got = PFP(ctx).run(TXNS, 0.4, max_length=2).itemsets
        assert got == {k: v for k, v in apriori(TXNS, 0.4).items() if len(k) <= 2}

    def test_max_length_one(self, ctx):
        got = PFP(ctx).run(TXNS, 0.4, max_length=1).itemsets
        assert got and all(len(k) == 1 for k in got)

    def test_empty_raises(self, ctx):
        with pytest.raises(MiningError):
            PFP(ctx).run([], 0.5)

    def test_invalid_support(self, ctx):
        with pytest.raises(MiningError):
            PFP(ctx).run(TXNS, 1.5)

    def test_nothing_frequent(self, ctx):
        got = PFP(ctx).run([["a"], ["b"], ["c"]], 0.9)
        assert got.itemsets == {}

    def test_dense_dataset(self, ctx):
        ds = mushroom_like(scale=0.03, seed=5)
        assert PFP(ctx, n_groups=6).run(ds.transactions, 0.4).itemsets == fpgrowth(
            ds.transactions, 0.4
        )

    def test_skewed_dataset(self, ctx):
        ds = retail_like(n_transactions=400, n_items=120, seed=5)
        assert PFP(ctx).run(ds.transactions, 0.05).itemsets == fpgrowth(
            ds.transactions, 0.05
        )

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=6), min_size=1, max_size=20),
        st.floats(0.1, 1.0),
        st.integers(1, 6),
    )
    def test_property_matches_oracle(self, txns, sup, groups):
        want = fpgrowth(txns, sup)
        with Context(backend="serial") as ctx:
            got = PFP(ctx, n_groups=groups).run(txns, sup).itemsets
        assert got == want


class TestParallelStructure:
    def test_two_shuffles_total(self, ctx):
        """PFP's selling point: constant shuffle rounds regardless of
        lattice depth (vs YAFIM's one per level)."""
        PFP(ctx).run(TXNS, 0.4)
        shuffle_stages = {
            t.stage_id for t in ctx.event_log.tasks if t.kind == "shuffle_map"
        }
        assert len(shuffle_stages) == 2  # counting + sharding

    def test_matches_yafim(self, ctx):
        from repro.core import Yafim

        ds = medical_cases(n_cases=250, seed=3)
        ya = Yafim(ctx).run(ds.transactions, 0.08).itemsets
        pfp = PFP(ctx, n_groups=4).run(ds.transactions, 0.08).itemsets
        assert pfp == ya

    def test_threads_backend(self):
        with Context(backend="threads", parallelism=4) as ctx:
            got = PFP(ctx).run(TXNS, 0.4).itemsets
        assert got == apriori(TXNS, 0.4)

    def test_iteration_stats(self, ctx):
        res = PFP(ctx).run(TXNS, 0.4)
        assert [it.k for it in res.iterations] == [1, 2]
        assert res.iterations[1].n_candidates >= 1  # group count recorded
