"""R-Apriori (candidate-free pass 2) tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import apriori, fpgrowth
from repro.common.errors import MiningError
from repro.core.rapriori import RApriori
from repro.core.yafim import Yafim
from repro.datasets import quest_generator
from repro.engine import Context

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["b", "c", "d"],
    ["a", "c", "d"],
    ["a", "b", "c", "d"],
] * 6


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


class TestCorrectness:
    def test_matches_oracle(self, ctx):
        assert RApriori(ctx).run(TXNS, 0.3).itemsets == apriori(TXNS, 0.3)

    def test_matches_yafim(self, ctx):
        ya = Yafim(ctx).run(TXNS, 0.3).itemsets
        ra = RApriori(ctx).run(TXNS, 0.3).itemsets
        assert ra == ya

    def test_algorithm_name(self, ctx):
        assert RApriori(ctx).run(TXNS, 0.3).algorithm == "rapriori"

    def test_max_length_one(self, ctx):
        got = RApriori(ctx).run(TXNS, 0.3, max_length=1).itemsets
        assert got and all(len(k) == 1 for k in got)

    def test_max_length_two(self, ctx):
        got = RApriori(ctx).run(TXNS, 0.3, max_length=2).itemsets
        want = {k: v for k, v in apriori(TXNS, 0.3).items() if len(k) <= 2}
        assert got == want

    def test_no_broadcast_config(self, ctx):
        got = RApriori(ctx, use_broadcast=False).run(TXNS, 0.3).itemsets
        assert got == apriori(TXNS, 0.3)

    def test_empty_and_invalid(self, ctx):
        with pytest.raises(MiningError):
            RApriori(ctx).run([], 0.5)
        with pytest.raises(MiningError):
            RApriori(ctx).run(TXNS, 0.0)

    def test_sparse_dataset(self, ctx):
        ds = quest_generator(n_transactions=400, n_items=80, seed=3)
        assert RApriori(ctx).run(ds.transactions, 0.02).itemsets == fpgrowth(
            ds.transactions, 0.02
        )

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=6), min_size=1, max_size=20),
        st.floats(0.1, 1.0),
    )
    def test_property_matches_oracle(self, txns, sup):
        with Context(backend="serial") as ctx:
            got = RApriori(ctx).run(txns, sup).itemsets
        assert got == fpgrowth(txns, sup)


class TestPassTwoBehaviour:
    def test_no_pass2_broadcast_of_hash_tree(self, ctx):
        """Pass 2 ships only the frequent-item set — far smaller than the
        pair hash tree YAFIM would broadcast."""
        ds = quest_generator(n_transactions=300, n_items=100, seed=3)
        ra = RApriori(ctx).run(ds.transactions, 0.02)
        with Context(backend="serial") as ctx2:
            ya = Yafim(ctx2).run(ds.transactions, 0.02)
        ra_pass2 = next(it for it in ra.iterations if it.k == 2)
        ya_pass2 = next(it for it in ya.iterations if it.k == 2)
        assert ra_pass2.broadcast_bytes < ya_pass2.broadcast_bytes / 5
        assert ra.itemsets == ya.itemsets

    def test_pass2_records_equivalent_candidate_count(self, ctx):
        res = RApriori(ctx).run(TXNS, 0.3)
        pass2 = next(it for it in res.iterations if it.k == 2)
        m = sum(1 for k in res.itemsets if len(k) == 1)
        assert pass2.n_candidates == m * (m - 1) // 2
