"""Registry tests: plugging algorithms in, `MiningConfig`, the legacy shim."""

import warnings

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.api import mine_frequent_itemsets
from repro.core.registry import (
    MiningConfig,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    run_algorithm,
    unregister_algorithm,
)
from repro.core.results import MiningRunResult

TXNS = [
    [1, 2],
    [1, 3, 4, 5],
    [2, 3, 4, 6],
    [1, 2, 3, 4],
    [1, 2, 3, 6],
] * 6

ORACLE = apriori(TXNS, 0.4)


def _toy_result(txns, config):
    result = MiningRunResult(
        algorithm=config.algorithm,
        min_support=config.min_support,
        n_transactions=len(txns),
    )
    result.itemsets = apriori(txns, config.min_support, max_length=config.max_length)
    return result


class TestRegistry:
    def test_builtins_registered(self):
        names = algorithm_names()
        for name in ("yafim", "dist_eclat", "pfp", "mrapriori", "apriori", "eclat", "fpgrowth"):
            assert name in names

    def test_round_trip_custom_algorithm(self):
        register_algorithm("toy", lambda txns, cfg: _toy_result(txns, cfg))
        try:
            assert "toy" in algorithm_names()
            got = mine_frequent_itemsets(TXNS, 0.4, algorithm="toy")
            assert got.itemsets == ORACLE
            assert got.algorithm == "toy"
        finally:
            unregister_algorithm("toy")
        assert "toy" not in algorithm_names()

    def test_engine_runner_gets_context_and_observability(self):
        seen = {}

        def engine_toy(ctx, txns, config):
            seen["ctx"] = ctx
            rdd = ctx.parallelize(txns, 2)
            seen["count"] = rdd.count()
            return _toy_result(txns, config)

        register_algorithm("toy_engine", engine_toy, needs_engine=True)
        try:
            got = mine_frequent_itemsets(TXNS, 0.4, algorithm="toy_engine", backend="serial")
        finally:
            unregister_algorithm("toy_engine")
        assert seen["count"] == len(TXNS)
        # The dispatcher attached the run's trace and folded metrics.
        assert got.trace is seen["ctx"].tracer
        assert got.engine_metrics is not None
        assert got.engine_metrics.n_jobs >= 1
        assert got.engine_metrics.n_tasks >= 2

    def test_duplicate_registration_rejected(self):
        register_algorithm("dup", lambda txns, cfg: _toy_result(txns, cfg))
        try:
            with pytest.raises(MiningError):
                register_algorithm("dup", lambda txns, cfg: _toy_result(txns, cfg))
            # overwrite=True replaces silently
            register_algorithm(
                "dup", lambda txns, cfg: _toy_result(txns, cfg), overwrite=True
            )
        finally:
            unregister_algorithm("dup")

    def test_get_unknown_algorithm_lists_names(self):
        with pytest.raises(MiningError, match="yafim"):
            get_algorithm("magic")

    def test_bad_name_rejected(self):
        with pytest.raises(MiningError):
            register_algorithm("", lambda txns, cfg: None)


class TestMiningConfig:
    def test_validates_support(self):
        with pytest.raises(MiningError):
            MiningConfig(min_support=0.0)
        with pytest.raises(MiningError):
            MiningConfig(min_support=1.5)

    def test_config_overload_matches_keywords(self):
        via_config = mine_frequent_itemsets(
            TXNS,
            config=MiningConfig(min_support=0.4, algorithm="eclat"),
        )
        via_kwargs = mine_frequent_itemsets(TXNS, 0.4, algorithm="eclat")
        assert via_config.itemsets == via_kwargs.itemsets == ORACLE

    def test_config_conflicts_with_min_support(self):
        with pytest.raises(MiningError):
            mine_frequent_itemsets(
                TXNS, 0.4, config=MiningConfig(min_support=0.4)
            )

    def test_min_support_required_without_config(self):
        with pytest.raises(MiningError):
            mine_frequent_itemsets(TXNS)

    def test_run_algorithm_direct(self):
        got = run_algorithm(TXNS, MiningConfig(min_support=0.4, algorithm="fpgrowth"))
        assert got.itemsets == ORACLE

    def test_unknown_candidate_store_lists_registered_names(self):
        from repro.core.candidatestore import store_names

        with pytest.raises(MiningError) as err:
            MiningConfig(min_support=0.4, candidate_store="btree")
        for name in store_names():
            assert name in str(err.value)

    def test_canonical_includes_candidate_store(self):
        cfg = MiningConfig(min_support=0.4, candidate_store="bitmap")
        assert cfg.canonical()["candidate_store"] == "bitmap"

    def test_cache_key_distinct_across_stores(self):
        from repro.core.candidatestore import store_names

        keys = {
            MiningConfig(min_support=0.4, candidate_store=name).cache_key()
            for name in store_names()
        }
        assert len(keys) == len(store_names())

    def test_cache_key_stable_for_same_store(self):
        a = MiningConfig(min_support=0.4, candidate_store="trie")
        b = MiningConfig(min_support=0.4, candidate_store="trie")
        assert a.cache_key() == b.cache_key()

    def test_default_store_not_injected_into_options(self):
        # `use_hash_tree=False` (ablation A3) must keep selecting the
        # linear matcher: the default "hashtree" may not override it.
        got = run_algorithm(
            TXNS,
            MiningConfig(
                min_support=0.4, backend="serial",
                options={"use_hash_tree": False},
            ),
        )
        assert got.itemsets == ORACLE

    def test_explicit_store_flows_to_miner(self):
        got = run_algorithm(
            TXNS,
            MiningConfig(min_support=0.4, backend="serial", candidate_store="bitmap"),
        )
        assert got.itemsets == ORACLE


class TestLegacyShim:
    def test_positional_algorithm_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="positionally"):
            got = mine_frequent_itemsets(TXNS, 0.4, "eclat")
        assert got.algorithm == "eclat"
        assert got.itemsets == ORACLE

    def test_full_legacy_signature(self):
        with pytest.warns(DeprecationWarning):
            got = mine_frequent_itemsets(TXNS, 0.4, "yafim", None, "serial", None, 3)
        assert got.itemsets == ORACLE

    def test_too_many_positionals_is_type_error(self):
        with pytest.raises(TypeError):
            mine_frequent_itemsets(TXNS, 0.4, "yafim", None, "serial", None, 3, "extra")

    def test_keyword_call_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            mine_frequent_itemsets(TXNS, 0.4, algorithm="eclat")


class TestNoDispatchChain:
    def test_api_has_no_per_algorithm_branching(self):
        import inspect

        import repro.core.api as api

        src = inspect.getsource(api)
        assert "if algorithm ==" not in src
        assert "elif algorithm" not in src


class TestRunAlgorithmWithContext:
    def test_caller_supplied_context_is_used_and_left_open(self):
        from repro.core.registry import MiningConfig, run_algorithm
        from repro.engine.context import Context

        cfg = MiningConfig(min_support=0.4, algorithm="yafim", backend="serial")
        with Context(backend="serial") as ctx:
            first = run_algorithm(TXNS, cfg, ctx=ctx)
            assert first.itemsets == ORACLE
            # context survives the run and can host another, renewed
            ctx.renew_run(label="second")
            assert not ctx.event_log.tasks
            second = run_algorithm(TXNS, cfg, ctx=ctx)
            assert second.itemsets == ORACLE
            assert second.engine_metrics.n_jobs > 0

    def test_non_engine_algorithms_ignore_ctx(self):
        from repro.core.registry import MiningConfig, run_algorithm

        got = run_algorithm(
            TXNS, MiningConfig(min_support=0.4, algorithm="eclat"), ctx=None
        )
        assert got.itemsets == ORACLE
