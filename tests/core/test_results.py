"""MiningRunResult / IterationStats unit tests."""

import pytest

from repro.core.results import IterationStats, MiningRunResult


@pytest.fixture()
def result():
    r = MiningRunResult(algorithm="test", min_support=0.5, n_transactions=10)
    r.itemsets = {("a",): 8, ("b",): 6, ("a", "b"): 5}
    r.iterations = [
        IterationStats(k=1, seconds=0.5, n_candidates=-1, n_frequent=2),
        IterationStats(k=2, seconds=0.25, n_candidates=1, n_frequent=1),
    ]
    return r


class TestMiningRunResult:
    def test_num_itemsets(self, result):
        assert result.num_itemsets == 3

    def test_total_seconds(self, result):
        assert result.total_seconds == pytest.approx(0.75)

    def test_max_level(self, result):
        assert result.max_level == 2

    def test_max_level_empty(self):
        assert MiningRunResult("x", 0.5, 0).max_level == 0

    def test_level_selector(self, result):
        assert result.level(1) == {("a",): 8, ("b",): 6}
        assert result.level(2) == {("a", "b"): 5}
        assert result.level(3) == {}

    def test_per_iteration_seconds(self, result):
        assert result.per_iteration_seconds() == [(1, 0.5), (2, 0.25)]

    def test_support_normalizes_order(self, result):
        assert result.support(("b", "a")) == pytest.approx(0.5)

    def test_support_missing_is_zero(self, result):
        assert result.support(("z",)) == 0.0

    def test_support_zero_transactions(self):
        r = MiningRunResult("x", 0.5, 0)
        assert r.support(("a",)) == 0.0

    def test_summary_mentions_all_passes(self, result):
        text = result.summary()
        assert "pass 1" in text and "pass 2" in text
        assert "test" in text


class TestIterationStats:
    def test_defaults(self):
        it = IterationStats(k=3, seconds=1.0, n_candidates=10, n_frequent=4)
        assert it.stage_records == []
        assert it.broadcast_bytes == 0
        assert it.closure_bytes == 0
        assert it.hdfs_read_bytes == 0
