"""Association-rule generation tests."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.rules import AssociationRule, generate_rules, top_rules

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
]


@pytest.fixture()
def itemsets():
    return apriori(TXNS, 0.4)


class TestGenerateRules:
    def test_known_rule_metrics(self, itemsets):
        rules = generate_rules(itemsets, len(TXNS), min_confidence=0.0)
        by_pair = {(r.antecedent, r.consequent): r for r in rules}
        rule = by_pair[(("beer",), ("diaper",))]
        # beer appears 3 times, always with diaper
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(3 / 5)
        assert rule.lift == pytest.approx(1.0 / (4 / 5))

    def test_min_confidence_filters(self, itemsets):
        all_rules = generate_rules(itemsets, len(TXNS), min_confidence=0.0)
        strict = generate_rules(itemsets, len(TXNS), min_confidence=0.9)
        assert len(strict) < len(all_rules)
        assert all(r.confidence >= 0.9 for r in strict)

    def test_min_lift_filters(self, itemsets):
        rules = generate_rules(itemsets, len(TXNS), min_confidence=0.0, min_lift=1.1)
        assert all(r.lift >= 1.1 for r in rules)

    def test_sorted_by_confidence(self, itemsets):
        rules = generate_rules(itemsets, len(TXNS), min_confidence=0.0)
        confs = [r.confidence for r in rules]
        assert confs == sorted(confs, reverse=True)

    def test_antecedent_consequent_partition_itemset(self, itemsets):
        for r in generate_rules(itemsets, len(TXNS), min_confidence=0.0):
            whole = tuple(sorted(r.antecedent + r.consequent))
            assert whole in itemsets
            assert not set(r.antecedent) & set(r.consequent)

    def test_multiway_rules_from_triples(self):
        txns = [["a", "b", "c"]] * 10
        itemsets = apriori(txns, 0.5)
        rules = generate_rules(itemsets, 10, min_confidence=0.5)
        antecedent_sizes = {len(r.antecedent) for r in rules}
        assert antecedent_sizes == {1, 2}

    def test_rejects_non_closed_map(self):
        with pytest.raises(MiningError):
            generate_rules({("a", "b"): 3}, 10, min_confidence=0.0)

    def test_rejects_bad_params(self, itemsets):
        with pytest.raises(MiningError):
            generate_rules(itemsets, 0)
        with pytest.raises(MiningError):
            generate_rules(itemsets, 5, min_confidence=1.5)

    def test_no_rules_from_singletons_only(self):
        rules = generate_rules({("a",): 5, ("b",): 3}, 10)
        assert rules == []


class TestPresentation:
    def test_top_rules(self, itemsets):
        rules = generate_rules(itemsets, len(TXNS), min_confidence=0.0)
        assert top_rules(rules, 3) == rules[:3]

    def test_str_contains_metrics(self):
        rule = AssociationRule(("a",), ("b",), 0.5, 0.8, 1.2)
        text = str(rule)
        assert "a" in text and "b" in text and "0.800" in text
