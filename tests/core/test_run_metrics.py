"""Per-iteration engine counters reported uniformly by the parallel miners."""

import pytest

from repro.core.dist_eclat import DistEclat
from repro.core.mrapriori import MRApriori
from repro.core.pfp import PFP
from repro.core.yafim import Yafim
from repro.engine.context import Context
from repro.hdfs.filesystem import MiniDfs
from repro.mapreduce.runner import JobRunner

TXNS = [
    [1, 2],
    [1, 3, 4, 5],
    [2, 3, 4, 6],
    [1, 2, 3, 4],
    [1, 2, 3, 6],
] * 6


def _run_engine_miner(cls, **kwargs):
    with Context(backend="serial") as ctx:
        return cls(ctx, num_partitions=2, **kwargs).run(TXNS, 0.4)


def _run_mrapriori():
    with MiniDfs(n_datanodes=2, replication=1) as dfs:
        dfs.write_lines(
            "/t.txt", (" ".join(str(i) for i in sorted(set(t))) for t in TXNS)
        )
        return MRApriori(JobRunner(dfs, backend="serial")).run("/t.txt", 0.4)


@pytest.fixture(scope="module")
def results():
    return {
        "yafim": _run_engine_miner(Yafim),
        "dist_eclat": _run_engine_miner(DistEclat),
        "pfp": _run_engine_miner(PFP),
        "mrapriori": _run_mrapriori(),
    }


class TestUniformCounters:
    @pytest.mark.parametrize("name", ["yafim", "dist_eclat", "pfp", "mrapriori"])
    def test_every_iteration_carries_engine_counters(self, results, name):
        result = results[name]
        assert result.iterations
        for it in result.iterations:
            assert it.shuffle_bytes >= 0
            assert it.broadcast_bytes >= 0
            assert 0.0 <= it.cache_hit_rate <= 1.0
            assert it.straggler_ratio >= 0.0

    @pytest.mark.parametrize("name", ["yafim", "dist_eclat", "pfp", "mrapriori"])
    def test_trace_rides_on_result(self, results, name):
        result = results[name]
        assert result.trace is not None
        assert len(result.trace) > 0

    @pytest.mark.parametrize("name", ["yafim", "dist_eclat", "pfp"])
    def test_engine_metrics_ride_on_result(self, results, name):
        m = results[name].engine_metrics
        assert m is not None
        assert m.n_jobs >= 1
        assert m.n_tasks >= 1

    def test_straggler_ratio_sane_where_tasks_ran(self, results):
        # max/mean over task durations: >= 1 whenever the pass ran tasks
        for it in results["yafim"].iterations:
            if it.stage_records:
                assert it.straggler_ratio >= 1.0

    def test_yafim_broadcast_bytes_on_candidate_passes(self, results):
        later = [it for it in results["yafim"].iterations if it.k >= 2]
        assert later
        assert all(it.broadcast_bytes > 0 for it in later)


class TestCacheHitRate:
    def test_cached_run_hits_on_every_rescan(self):
        result = _run_engine_miner(Yafim, cache_transactions=True)
        later = [it for it in result.iterations if it.k >= 2]
        assert later
        # every k >= 2 pass re-reads the cached transaction partitions
        for it in later:
            assert it.cache_hit_rate == pytest.approx(1.0)

    def test_uncached_run_never_hits(self):
        result = _run_engine_miner(Yafim, cache_transactions=False)
        for it in result.iterations:
            assert it.cache_hit_rate == pytest.approx(0.0)

    def test_mrapriori_reports_zero_hit_rate(self):
        # MapReduce re-reads the DFS every pass; no block cache exists
        result = _run_mrapriori()
        assert all(it.cache_hit_rate == 0.0 for it in result.iterations)
