"""Oracle-parity grid: candidate store × algorithm × backend.

Every registered store must be a drop-in replacement: for each miner and
each backend, swapping the store changes wall-clock, never the output.
The reference is the sequential Apriori oracle (itself cross-checked
against fpgrowth/eclat elsewhere).

``max_length=3`` everywhere so the candidate-free one-phase miner (whose
subset enumeration *requires* a cap) mines exactly the same space as the
reference.
"""

import pytest

from repro.core.registry import MiningConfig, run_algorithm
from repro.datasets import mushroom_like, quest_generator

STORES = ["hashtree", "trie", "flatdict", "bitmap"]
MAX_LEN = 3


@pytest.fixture(scope="module")
def mushroom():
    ds = mushroom_like(scale=0.02, seed=11)
    return [tuple(t) for t in ds.transactions]


@pytest.fixture(scope="module")
def synthetic():
    ds = quest_generator(
        n_transactions=120, n_items=30, avg_transaction_size=6.0,
        n_patterns=12, seed=7,
    )
    return [tuple(t) for t in ds.transactions]


def oracle(txns, min_support):
    cfg = MiningConfig(
        min_support=min_support, algorithm="apriori", max_length=MAX_LEN
    )
    return run_algorithm(txns, cfg).itemsets


def mine(txns, min_support, algorithm, store, backend):
    cfg = MiningConfig(
        min_support=min_support,
        algorithm=algorithm,
        max_length=MAX_LEN,
        backend=backend,
        parallelism=2,
        candidate_store=store,
    )
    return run_algorithm(txns, cfg).itemsets


class TestEngineMinersStoreGrid:
    """yafim / rapriori / dist_eclat: in-process engine, both backends."""

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("algorithm", ["yafim", "rapriori", "dist_eclat"])
    def test_mushroom_matches_oracle(self, mushroom, algorithm, store, backend):
        want = oracle(mushroom, 0.4)
        got = mine(mushroom, 0.4, algorithm, store, backend)
        assert got == want

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("algorithm", ["yafim", "rapriori", "dist_eclat"])
    def test_synthetic_matches_oracle(self, synthetic, algorithm, store):
        want = oracle(synthetic, 0.08)
        got = mine(synthetic, 0.08, algorithm, store, "serial")
        assert got == want

    @pytest.mark.parametrize("store", STORES)
    def test_linear_store_matches_too(self, synthetic, store):
        want = mine(synthetic, 0.08, "yafim", "linear", "serial")
        got = mine(synthetic, 0.08, "yafim", store, "serial")
        assert got == want


class TestMapReduceMinersStoreGrid:
    """mrapriori / one_phase: MapReduce substrate over an ephemeral DFS."""

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("algorithm", ["mrapriori", "one_phase"])
    def test_synthetic_matches_oracle(self, synthetic, algorithm, store):
        want = oracle(synthetic, 0.08)
        got = mine(synthetic, 0.08, algorithm, store, "serial")
        assert got == want

    @pytest.mark.parametrize("store", ["hashtree", "bitmap"])
    def test_mrapriori_mushroom_threads(self, mushroom, store):
        want = oracle(mushroom, 0.4)
        got = mine(mushroom, 0.4, "mrapriori", store, "threads")
        assert got == want


class TestProcessBackendSpotChecks:
    """One multi-process check per headline store (slow to spawn; keep few)."""

    @pytest.mark.parametrize("store", ["bitmap", "flatdict"])
    def test_yafim_processes(self, mushroom, store):
        want = oracle(mushroom, 0.4)
        got = mine(mushroom, 0.4, "yafim", store, "processes")
        assert got == want
