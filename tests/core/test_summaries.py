"""Closed/maximal itemsets and negative-border tests."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.summaries import (
    closed_itemsets,
    maximal_itemsets,
    negative_border,
    support_of,
)

TXNS = [
    ["a", "b", "c"],
    ["a", "b", "c"],
    ["a", "b"],
    ["a", "c"],
    ["d"],
] * 2


@pytest.fixture()
def frequent():
    return apriori(TXNS, 0.3)


def brute_maximal(itemsets):
    return {
        k: v
        for k, v in itemsets.items()
        if not any(set(k) < set(o) for o in itemsets)
    }


def brute_closed(itemsets):
    return {
        k: v
        for k, v in itemsets.items()
        if not any(set(k) < set(o) and itemsets[o] == v for o in itemsets)
    }


class TestMaximal:
    def test_matches_brute_force(self, frequent):
        assert maximal_itemsets(frequent) == brute_maximal(frequent)

    def test_abc_is_maximal(self, frequent):
        maximal = maximal_itemsets(frequent)
        assert ("a", "b", "c") in maximal
        assert ("a", "b") not in maximal

    def test_isolated_singleton_is_maximal(self):
        freq = apriori(TXNS, 0.2)  # 'd' (support 0.2) is frequent here
        assert ("d",) in maximal_itemsets(freq)

    def test_empty(self):
        assert maximal_itemsets({}) == {}

    def test_type_check(self):
        with pytest.raises(MiningError):
            maximal_itemsets([("a",)])


class TestClosed:
    def test_matches_brute_force(self, frequent):
        assert closed_itemsets(frequent) == brute_closed(frequent)

    def test_non_closed_dropped(self):
        # b always co-occurs with a: (b,) has the same support as (a, b)
        txns = [["a", "b"], ["a", "b"], ["a"]]
        freq = apriori(txns, 0.3)
        closed = closed_itemsets(freq)
        assert ("b",) not in closed
        assert ("a", "b") in closed
        assert ("a",) in closed  # higher support than (a, b)

    def test_closed_superset_of_maximal(self, frequent):
        closed = set(closed_itemsets(frequent))
        maximal = set(maximal_itemsets(frequent))
        assert maximal <= closed

    def test_support_recovery(self, frequent):
        closed = closed_itemsets(frequent)
        for iset, count in frequent.items():
            assert support_of(iset, closed) == count

    def test_support_of_infrequent_is_zero(self, frequent):
        closed = closed_itemsets(frequent)
        assert support_of(("z",), closed) == 0


class TestNegativeBorder:
    def test_border_members_minimal_infrequent(self, frequent):
        border = negative_border(frequent)
        for iset in border:
            assert iset not in frequent
            for sub in combinations(iset, len(iset) - 1):
                if sub:
                    assert sub in frequent

    def test_explicit_universe_adds_infrequent_singletons(self, frequent):
        border = negative_border(frequent, items=["a", "b", "z"])
        assert ("z",) in border

    def test_simple_case(self):
        txns = [["a"], ["b"], ["a", "b"]] * 5
        freq = apriori(txns, 0.5)  # a, b frequent; (a, b) support 1/3 infrequent
        assert negative_border(freq) == [("a", "b")]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 6), min_size=1, max_size=5), min_size=1, max_size=15),
        st.floats(0.15, 0.9),
    )
    def test_border_disjoint_from_frequent(self, txns, sup):
        freq = apriori(txns, sup)
        border = set(negative_border(freq))
        assert not border & set(freq)


class TestPropertyAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 6), min_size=1, max_size=5), min_size=1, max_size=15),
        st.floats(0.15, 0.9),
    )
    def test_maximal_and_closed(self, txns, sup):
        freq = apriori(txns, sup)
        assert maximal_itemsets(freq) == brute_maximal(freq)
        assert closed_itemsets(freq) == brute_closed(freq)
