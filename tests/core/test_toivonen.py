"""Toivonen sampling-algorithm tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.toivonen import ToivonenResult, count_exact, toivonen
from repro.datasets import medical_cases, retail_like

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["b", "c"],
    ["a", "c"],
    ["d"],
] * 20  # big enough that a 25% sample is representative


class TestCountExact:
    def test_counts_match_definition(self):
        candidates = [("a",), ("a", "b"), ("x", "y"), ("a", "b", "c")]
        counts = count_exact([tuple(sorted(set(t))) for t in TXNS], candidates)
        assert counts[("a",)] == 60
        assert counts[("a", "b")] == 40
        assert counts[("x", "y")] == 0
        assert counts[("a", "b", "c")] == 20

    def test_mixed_lengths(self):
        counts = count_exact([("a", "b")], [("a",), ("b",), ("a", "b")])
        assert counts == {("a",): 1, ("b",): 1, ("a", "b"): 1}

    def test_empty_candidates(self):
        assert count_exact([("a",)], []) == {}

    @pytest.mark.parametrize("store", ["bitmap", "trie", "flatdict", "linear"])
    def test_counts_identical_across_stores(self, store):
        txns = [tuple(sorted(set(t))) for t in TXNS]
        candidates = [("a",), ("a", "b"), ("x", "y"), ("a", "b", "c"), ("d",)]
        assert count_exact(txns, candidates, candidate_store=store) == count_exact(
            txns, candidates
        )

    def test_store_options_forwarded(self):
        counts = count_exact(
            [("a", "b")], [("a", "b")],
            candidate_store="hashtree", store_options={"fanout": 4},
        )
        assert counts == {("a", "b"): 1}


class TestToivonen:
    def test_matches_oracle(self):
        result = toivonen(TXNS, 0.3, sample_fraction=0.5, seed=1)
        assert result.itemsets == apriori(TXNS, 0.3)
        assert result.attempts >= 1
        assert isinstance(result, ToivonenResult)

    def test_full_sample_always_exact(self):
        # sample_fraction=1: the sample IS the database; must succeed first try
        result = toivonen(TXNS, 0.3, sample_fraction=1.0, seed=0)
        assert result.attempts == 1
        assert result.itemsets == apriori(TXNS, 0.3)

    def test_bitmap_store_matches_default(self):
        default = toivonen(TXNS, 0.3, sample_fraction=0.5, seed=1)
        bitmap = toivonen(
            TXNS, 0.3, sample_fraction=0.5, seed=1, candidate_store="bitmap"
        )
        assert bitmap.itemsets == default.itemsets

    def test_counts_are_exact_not_sampled(self):
        result = toivonen(TXNS, 0.3, sample_fraction=0.4, seed=2)
        oracle = apriori(TXNS, 0.3)
        for iset, count in result.itemsets.items():
            assert count == oracle[iset]

    def test_on_generated_datasets(self):
        for ds, sup in (
            (medical_cases(n_cases=600, seed=3), 0.1),
            (retail_like(n_transactions=800, n_items=150, seed=3), 0.05),
        ):
            result = toivonen(ds.transactions, sup, sample_fraction=0.5, seed=3)
            assert result.itemsets == apriori(ds.transactions, sup)

    def test_candidates_exceed_output(self):
        result = toivonen(TXNS, 0.3, sample_fraction=0.5, seed=1)
        assert result.candidates_counted >= result.num_itemsets

    def test_invalid_params(self):
        with pytest.raises(MiningError):
            toivonen(TXNS, 0.0)
        with pytest.raises(MiningError):
            toivonen(TXNS, 0.5, sample_fraction=0.0)
        with pytest.raises(MiningError):
            toivonen(TXNS, 0.5, lowering=0.0)
        with pytest.raises(MiningError):
            toivonen([], 0.5)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 6), min_size=1, max_size=4), min_size=10, max_size=40),
        st.floats(0.2, 0.8),
        st.integers(0, 5),
    )
    def test_property_exact_when_it_succeeds(self, txns, sup, seed):
        """Whenever toivonen returns, its answer equals the oracle's."""
        try:
            result = toivonen(
                txns, sup, sample_fraction=0.6, lowering=0.6, seed=seed, max_attempts=8
            )
        except MiningError:
            return  # unlucky samples exhausted the retry budget: allowed
        assert result.itemsets == apriori(txns, sup)
