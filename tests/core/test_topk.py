"""Top-K mining tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.topk import mine_top_k

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["a", "b"],
    ["a", "c"],
    ["b"],
] * 4


class TestMineTopK:
    def test_best_first(self):
        top = mine_top_k(TXNS, k=3)
        # by support: a=16, b=16, (a,b)=12 ... ties broken canonically
        assert top.itemsets[0] == (("a",), 16)
        assert top.itemsets[1] == (("b",), 16)
        assert top.itemsets[2] == (("a", "b"), 12)

    def test_exactly_k(self):
        assert len(mine_top_k(TXNS, k=5).itemsets) == 5

    def test_achieved_support(self):
        top = mine_top_k(TXNS, k=3)
        assert top.achieved_support == pytest.approx(12 / 20)

    def test_min_length_excludes_singletons(self):
        top = mine_top_k(TXNS, k=2, min_length=2)
        assert all(len(iset) >= 2 for iset, _c in top.itemsets)
        assert top.itemsets[0] == (("a", "b"), 12)

    def test_max_length(self):
        top = mine_top_k(TXNS, k=10, max_length=1)
        assert all(len(iset) == 1 for iset, _c in top.itemsets)

    def test_k_larger_than_family(self):
        top = mine_top_k([["x", "y"]], k=50)
        assert len(top.itemsets) == 3  # (x,), (y,), (x, y)

    def test_descent_probes_recorded(self):
        top = mine_top_k(TXNS, k=12, initial_support=0.9)
        assert top.probes >= 2  # 0.9 cannot admit 12 itemsets immediately

    def test_invalid_params(self):
        with pytest.raises(MiningError):
            mine_top_k(TXNS, k=0)
        with pytest.raises(MiningError):
            mine_top_k(TXNS, k=1, min_length=0)
        with pytest.raises(MiningError):
            mine_top_k(TXNS, k=1, min_length=3, max_length=2)
        with pytest.raises(MiningError):
            mine_top_k([], k=1)
        with pytest.raises(MiningError):
            mine_top_k(TXNS, k=1, descent_factor=1.0)

    def test_as_dict(self):
        top = mine_top_k(TXNS, k=2)
        assert top.as_dict() == dict(top.itemsets)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 7), min_size=1, max_size=5), min_size=1, max_size=20),
        st.integers(1, 15),
    )
    def test_property_matches_full_enumeration(self, txns, k):
        """Top-K must equal sorting the FULL itemset family by support."""
        full = apriori(txns, 1.0 / len(txns))
        want = sorted(full.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        got = mine_top_k(txns, k=k).itemsets
        assert got == want
