"""YAFIM behaviour tests: correctness, configuration, instrumentation."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core import Yafim, load_transactions_rdd
from repro.engine import Context
from repro.hdfs import MiniDfs

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 10


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


class TestCorrectness:
    def test_matches_oracle(self, ctx):
        want = apriori(TXNS, 0.4)
        got = Yafim(ctx).run(TXNS, 0.4)
        assert got.itemsets == want

    def test_support_one(self, ctx):
        got = Yafim(ctx).run([["a", "b"]] * 4, 1.0)
        assert got.itemsets == {("a",): 4, ("b",): 4, ("a", "b"): 4}

    def test_max_length(self, ctx):
        got = Yafim(ctx).run(TXNS, 0.4, max_length=2)
        assert got.max_level == 2
        want = {k: v for k, v in apriori(TXNS, 0.4).items() if len(k) <= 2}
        assert got.itemsets == want

    def test_empty_database_raises(self, ctx):
        with pytest.raises(MiningError):
            Yafim(ctx).run([], 0.5)

    def test_invalid_support_raises(self, ctx):
        with pytest.raises(MiningError):
            Yafim(ctx).run(TXNS, 0.0)
        with pytest.raises(MiningError):
            Yafim(ctx).run(TXNS, 1.1)

    def test_nothing_frequent(self, ctx):
        got = Yafim(ctx).run([["a"], ["b"], ["c"], ["d"]], 0.9)
        assert got.itemsets == {}
        assert len(got.iterations) == 1  # only phase I ran

    def test_text_file_input(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=128) as dfs:
            dfs.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
            got = Yafim(ctx).run_text_file(dfs, "/t.txt", 0.4)
        want = apriori([[str(i) for i in t] for t in TXNS], 0.4)
        assert got.itemsets == want

    def test_blank_lines_ignored(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=1) as dfs:
            dfs.write_lines("/t.txt", ["a b", "", "a b", ""])
            got = Yafim(ctx).run_text_file(dfs, "/t.txt", 0.5)
        assert got.n_transactions == 2
        assert got.itemsets[("a", "b")] == 2


class TestConfigurations:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"use_hash_tree": False},
            {"use_broadcast": False},
            {"cache_transactions": False},
            {"use_hash_tree": False, "use_broadcast": False, "cache_transactions": False},
            {"hash_tree_fanout": 4, "hash_tree_leaf_size": 2},
            {"num_partitions": 1},
            {"num_partitions": 7},
            {"clear_shuffles_between_iterations": False},
        ],
    )
    def test_all_configs_agree(self, ctx, kwargs):
        want = apriori(TXNS, 0.4)
        got = Yafim(ctx, **kwargs).run(TXNS, 0.4)
        assert got.itemsets == want

    @pytest.mark.parametrize("backend,par", [("threads", 4), ("processes", 2)])
    def test_parallel_backends_agree(self, backend, par):
        want = apriori(TXNS, 0.4)
        with Context(backend=backend, parallelism=par) as ctx:
            got = Yafim(ctx).run(TXNS, 0.4)
        assert got.itemsets == want

    def test_cache_used_across_iterations(self, ctx):
        Yafim(ctx).run(TXNS, 0.4)
        # transactions cached once, hit on every later pass
        assert ctx.block_manager.metrics.memory_hits > 0

    def test_no_cache_config_never_caches(self, ctx):
        Yafim(ctx, cache_transactions=False).run(TXNS, 0.4)
        assert ctx.block_manager.cached_block_count == 0

    def test_broadcast_accounting(self, ctx):
        Yafim(ctx).run(TXNS, 0.4)
        assert ctx.broadcast_manager.transfers > 0


class TestInstrumentation:
    def test_iteration_stats_shape(self, ctx):
        res = Yafim(ctx).run(TXNS, 0.4)
        assert res.iterations[0].k == 1
        ks = [it.k for it in res.iterations]
        assert ks == list(range(1, len(ks) + 1))
        for it in res.iterations:
            assert it.seconds > 0
            assert it.n_frequent == len(res.level(it.k))
        for it in res.iterations[1:]:
            assert it.n_candidates >= it.n_frequent

    def test_stage_records_present(self, ctx):
        res = Yafim(ctx).run(TXNS, 0.4)
        for it in res.iterations:
            assert it.stage_records, f"pass {it.k} has no stage records"
            assert all(r.task_durations for r in it.stage_records)

    def test_broadcast_bytes_recorded(self, ctx):
        res = Yafim(ctx).run(TXNS, 0.4)
        assert all(it.broadcast_bytes > 0 for it in res.iterations[1:])
        assert res.iterations[0].broadcast_bytes == 0

    def test_phase2_reads_no_input_bytes_when_cached(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=256) as dfs:
            dfs.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
            res = Yafim(ctx).run_text_file(dfs, "/t.txt", 0.4)
        assert res.iterations[0].hdfs_read_bytes > 0  # phase I reads the file
        for it in res.iterations[1:]:
            assert it.hdfs_read_bytes == 0  # later passes served from cache

    def test_uncached_rereads_every_pass(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=256) as dfs:
            dfs.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
            rdd = load_transactions_rdd(ctx, dfs, "/t.txt")
            res = Yafim(ctx, cache_transactions=False).run_rdd(rdd, 0.4)
        for it in res.iterations:
            assert it.hdfs_read_bytes > 0

    def test_result_helpers(self, ctx):
        res = Yafim(ctx).run(TXNS, 0.4)
        assert res.support(("beer", "diaper")) == pytest.approx(30 / 50)
        assert res.support(("no", "such")) == 0.0
        assert "yafim" in res.summary()
        assert res.total_seconds == pytest.approx(
            sum(s for _k, s in res.per_iteration_seconds())
        )
