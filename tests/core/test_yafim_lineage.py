"""Structural fidelity: YAFIM's dataflow matches the paper's Figs. 1-2.

Fig. 1 (Phase I):  file -> flatMap -> map -> reduceByKey  (one shuffle)
Fig. 2 (Phase II): cached Transactions -> flatMap(subset) -> map ->
                   reduceByKey  (one shuffle per pass)

So every pass — Phase I's counting job and each Phase II iteration — must
execute exactly one shuffle boundary: one shuffle-map stage plus one
result stage over the reduced pairs.
"""

import pytest

from repro.core import Yafim, load_transactions_rdd
from repro.engine import Context, ShuffledRDD, stage_count
from repro.hdfs import MiniDfs

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["b", "c"],
    ["a", "c"],
] * 10


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


#: Knobs restoring the seed's exact paper dataflow (fast path off).
PAPER_SHAPE = dict(
    use_dict_encoding=False, use_in_tree_counting=False, use_compaction=False
)


class TestPhaseStructure:
    def test_each_pass_is_one_shuffle(self, ctx):
        miner = Yafim(ctx, num_partitions=4, **PAPER_SHAPE)
        result = miner.run(TXNS, 0.3)
        # Every iteration recorded exactly 2 stages: shuffle-map + result
        for it in result.iterations:
            # pass 1 includes the count() job (1 extra result stage)
            labels = [r.label for r in it.stage_records]
            assert 2 <= len(labels) <= 3, labels

    def test_fastpath_phase1_is_shuffle_free(self, ctx):
        """The fast path merges Phase I on the driver: no shuffle at all."""
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        phase1 = result.iterations[0]
        assert len(phase1.stage_records) == 1  # one run_job result stage
        assert phase1.shuffle_bytes == 0
        assert phase1.shuffle_records == 0
        # later passes keep the paper's one-shuffle-per-level structure
        for it in result.iterations[1:]:
            labels = [r.label for r in it.stage_records]
            assert len(labels) == 2, labels

    def test_phase1_lineage_shape(self, ctx, tmp_path):
        """The Fig. 1 chain compiles to exactly 2 stages."""
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2) as dfs:
            dfs.write_lines("/t.txt", (" ".join(t) for t in TXNS))
            transactions = load_transactions_rdd(ctx, dfs, "/t.txt")
            level1 = (
                transactions.flat_map(lambda t: t)
                .map(lambda i: (i, 1))
                .reduce_by_key(lambda a, b: a + b, 4)
            )
            assert stage_count(level1) == 2
            assert isinstance(level1, ShuffledRDD)

    def test_transactions_cached_before_phase2(self, ctx):
        miner = Yafim(ctx, num_partitions=4)
        miner.run(TXNS, 0.3)
        # transaction partitions live in the block manager across passes
        assert ctx.block_manager.cached_block_count == 4

    def test_map_side_combine_active(self, ctx):
        """reduceByKey must pre-aggregate map-side: shuffled records per
        map task are bounded by distinct keys, not raw item occurrences."""
        miner = Yafim(ctx, num_partitions=2, **PAPER_SHAPE)
        miner.run(TXNS, 0.3)
        map_tasks = [t for t in ctx.event_log.tasks if t.kind == "shuffle_map"]
        assert map_tasks
        distinct_items = 3  # a, b, c
        # phase-I map tasks emit at most one pair per distinct item each
        phase1 = map_tasks[0]
        assert phase1.records_out <= distinct_items * 2  # x partitioner spread

    def test_broadcast_once_per_phase2_pass(self, ctx):
        miner = Yafim(ctx, num_partitions=4)
        result = miner.run(TXNS, 0.3)
        n_phase2 = sum(1 for it in result.iterations if it.k >= 2)
        # one broadcast per phase-II iteration, resolved by every map task
        assert ctx.broadcast_manager.transfers >= n_phase2
