"""Dataset generator tests: shapes, determinism, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import fpgrowth, max_level
from repro.common.errors import DatasetError
from repro.common.itemset import is_canonical
from repro.datasets import (
    PAPER_TABLE_1,
    AttributeSpec,
    chess_like,
    dense_dataset,
    from_lines,
    medical_cases,
    mushroom_like,
    pumsb_star_like,
    quest_generator,
    t10i4d100k_like,
)


GENERATORS = {
    "mushroom": lambda: mushroom_like(scale=0.05, seed=1),
    "chess": lambda: chess_like(scale=0.1, seed=1),
    "pumsb_star": lambda: pumsb_star_like(scale=0.01, seed=1),
    "t10i4": lambda: t10i4d100k_like(scale=0.005, seed=1),
    "medical": lambda: medical_cases(n_cases=400, seed=1),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestCommonInvariants:
    def test_transactions_canonical(self, name):
        ds = GENERATORS[name]()
        for t in ds.transactions:
            assert is_canonical(t)
            assert len(t) >= 1

    def test_deterministic_by_seed(self, name):
        a, b = GENERATORS[name](), GENERATORS[name]()
        assert a.transactions == b.transactions

    def test_different_seed_differs(self, name):
        make = GENERATORS[name]
        a = make()
        b_kwargs = dict(seed=2)
        if name == "medical":
            b = medical_cases(n_cases=400, **b_kwargs)
        elif name == "t10i4":
            b = t10i4d100k_like(scale=0.005, **b_kwargs)
        elif name == "mushroom":
            b = mushroom_like(scale=0.05, **b_kwargs)
        elif name == "chess":
            b = chess_like(scale=0.1, **b_kwargs)
        else:
            b = pumsb_star_like(scale=0.01, **b_kwargs)
        assert a.transactions != b.transactions

    def test_stats(self, name):
        ds = GENERATORS[name]()
        st_ = ds.stats()
        assert st_.n_transactions == len(ds.transactions)
        assert st_.avg_transaction_length <= st_.max_transaction_length
        assert st_.n_distinct_items > 0

    def test_lines_roundtrip(self, name):
        ds = GENERATORS[name]()
        back = from_lines(ds.name, ds.to_lines())
        got = [tuple(sorted(t, key=str)) for t in back.transactions]
        want = [tuple(str(i) for i in sorted(t, key=str)) for t in ds.transactions]
        # items round-trip as strings
        assert got == [tuple(x) for x in want]


class TestPaperShapes:
    @pytest.mark.parametrize(
        "make,key",
        [
            (mushroom_like, "mushroom"),
            (chess_like, "chess"),
            (pumsb_star_like, "pumsb_star"),
            (t10i4d100k_like, "t10i4d100k"),
        ],
    )
    def test_paper_shape_attached(self, make, key):
        ds = make(seed=0)
        assert ds.paper_shape == PAPER_TABLE_1[key]

    def test_mushroom_item_universe(self):
        ds = mushroom_like(scale=0.1, seed=0)
        assert ds.params["n_items"] == 119  # Table I

    def test_chess_item_universe(self):
        assert chess_like(scale=0.1, seed=0).params["n_items"] == 75

    def test_pumsb_item_universe(self):
        assert pumsb_star_like(scale=0.01, seed=0).params["n_items"] == 2088

    def test_full_scale_transaction_counts(self):
        # scale=1.0 must match Table I exactly (generate lazily, only count)
        assert mushroom_like(scale=1.0, seed=0).n_transactions == 8124
        assert chess_like(scale=1.0, seed=0).n_transactions == 3196

    def test_mining_depth_at_paper_support(self):
        """The generated datasets must produce multi-level runs at the
        paper's thresholds — that's what drives Fig. 3's shape."""
        for make, sup, min_depth in (
            (lambda: mushroom_like(scale=0.05, seed=3), 0.35, 5),
            (lambda: chess_like(scale=0.1, seed=3), 0.85, 6),
            (lambda: pumsb_star_like(scale=0.01, seed=3), 0.65, 4),
        ):
            ds = make()
            depth = max_level(fpgrowth(ds.transactions, sup))
            assert depth >= min_depth, f"{ds.name}: depth {depth}"


class TestDenseDataset:
    def test_item_ranges(self):
        ds = dense_dataset(
            "x", 100, n_core=3, core_prob=0.9,
            attributes=[AttributeSpec(4, 0.5), AttributeSpec(2, 0.6)], seed=0,
        )
        all_items = {i for t in ds.transactions for i in t}
        assert all_items <= set(range(3 + 4 + 2))
        # each transaction has at most one value per attribute
        for t in ds.transactions:
            attr1 = [i for i in t if 3 <= i < 7]
            attr2 = [i for i in t if 7 <= i < 9]
            assert len(attr1) <= 1 and len(attr2) <= 1

    def test_core_prob_validated(self):
        with pytest.raises(DatasetError):
            dense_dataset("x", 10, n_core=2, core_prob=1.5, attributes=[], seed=0)

    def test_core_items_frequency_near_prob(self):
        ds = dense_dataset(
            "x", 4000, n_core=4, core_prob=0.9, attributes=[AttributeSpec(3, 0.5)], seed=0
        )
        for core in range(4):
            freq = sum(1 for t in ds.transactions if core in t) / 4000
            assert 0.87 < freq < 0.93

    def test_attribute_dominant_mass(self):
        spec = AttributeSpec(5, 0.7)
        p = spec.probabilities()
        assert p[0] == pytest.approx(0.7)
        assert p.sum() == pytest.approx(1.0)


class TestQuestGenerator:
    def test_avg_transaction_size_close(self):
        ds = quest_generator(n_transactions=3000, avg_transaction_size=10, seed=0)
        avg = ds.stats().avg_transaction_length
        assert 6 < avg < 14

    def test_item_universe_respected(self):
        ds = quest_generator(n_transactions=500, n_items=50, seed=0)
        assert all(0 <= i < 50 for t in ds.transactions for i in t)

    def test_patterns_make_data_non_uniform(self):
        """Quest data must contain correlated patterns: some frequent pair
        should beat its independence expectation by a wide margin."""
        n = 3000
        ds = quest_generator(n_transactions=n, n_items=200, n_patterns=100, seed=0)
        mined = fpgrowth(ds.transactions, 0.01)
        singles = {k[0]: v for k, v in mined.items() if len(k) == 1}
        lifts = [
            v / (singles[k[0]] * singles[k[1]] / n)
            for k, v in mined.items()
            if len(k) == 2
        ]
        assert lifts, "no frequent pairs at 1% — no pattern structure"
        assert max(lifts) > 2.0

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            quest_generator(n_transactions=0)
        with pytest.raises(DatasetError):
            quest_generator(avg_transaction_size=0)
        with pytest.raises(DatasetError):
            t10i4d100k_like(scale=0.0)

    def test_name_encodes_params(self):
        assert quest_generator(n_transactions=500, seed=0).name == "T10I4D500"


class TestMedical:
    def test_vocabulary_structure(self):
        ds = medical_cases(n_cases=300, seed=0)
        kinds = {i[:3] for t in ds.transactions for i in t}
        assert kinds <= {"dx0", "dx1", "sym", "med", "otc"}

    def test_bundles_are_correlated(self):
        """Each condition's medicines must co-occur far above chance."""
        from repro.datasets.medical import default_conditions
        from repro.common.rng import make_rng

        ds = medical_cases(n_cases=3000, seed=0)
        conditions = default_conditions(make_rng(0), 12)
        c = conditions[0]
        m1, m2 = c.medicines[0], c.medicines[1]
        n = len(ds.transactions)
        f1 = sum(1 for t in ds.transactions if m1 in t) / n
        f2 = sum(1 for t in ds.transactions if m2 in t) / n
        both = sum(1 for t in ds.transactions if m1 in t and m2 in t) / n
        assert both > 1.5 * f1 * f2

    def test_paper_support_recorded(self):
        assert medical_cases(n_cases=200, seed=0).params["paper_min_support"] == 0.03


class TestReplicationAndSubset:
    def test_replicated_preserves_relative_supports(self):
        ds = GENERATORS["medical"]()
        rep = ds.replicated(3)
        assert rep.n_transactions == 3 * ds.n_transactions
        base = fpgrowth(ds.transactions, 0.1)
        scaled = fpgrowth(rep.transactions, 0.1)
        assert set(base) == set(scaled)
        assert all(scaled[k] == 3 * base[k] for k in base)

    def test_replicated_invalid(self):
        with pytest.raises(DatasetError):
            GENERATORS["medical"]().replicated(0)

    def test_subset(self):
        ds = GENERATORS["medical"]()
        sub = ds.subset(10)
        assert sub.n_transactions == 10
        assert sub.transactions == ds.transactions[:10]
        with pytest.raises(DatasetError):
            ds.subset(0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 5))
    def test_replication_factor_multiplies_length(self, factor):
        ds = quest_generator(n_transactions=50, seed=0)
        assert ds.replicated(factor).n_transactions == 50 * factor
