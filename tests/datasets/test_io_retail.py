"""Dataset file I/O and power-law retail generator tests."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.datasets import (
    append_transactions,
    dataset_from_dfs,
    medical_cases,
    read_dat,
    retail_like,
    write_dat,
)
from repro.hdfs import MiniDfs


class TestDatIO:
    def test_roundtrip(self, tmp_path):
        ds = medical_cases(n_cases=50, seed=1)
        path = str(tmp_path / "m.dat")
        nbytes = write_dat(ds, path)
        assert nbytes > 0
        back = read_dat(path)
        assert back.n_transactions == 50
        assert back.transactions == ds.transactions  # string items both sides

    def test_gzip_roundtrip(self, tmp_path):
        ds = medical_cases(n_cases=30, seed=1)
        path = str(tmp_path / "m.dat.gz")
        write_dat(ds, path)
        assert read_dat(path).transactions == ds.transactions

    def test_gzip_smaller_than_plain(self, tmp_path):
        ds = medical_cases(n_cases=500, seed=1)
        plain = write_dat(ds, str(tmp_path / "a.dat"))
        gz = write_dat(ds, str(tmp_path / "a.dat.gz"))
        assert gz < plain

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_dat(str(tmp_path / "nope.dat"))

    def test_append(self, tmp_path):
        ds = medical_cases(n_cases=10, seed=1)
        path = str(tmp_path / "a.dat")
        write_dat(ds, path)
        assert append_transactions(path, [["x", "y"], ["z"]]) == 2
        back = read_dat(path)
        assert back.n_transactions == 12
        assert back.transactions[-1] == ("z",)

    def test_append_to_gzip_rejected(self, tmp_path):
        ds = medical_cases(n_cases=5, seed=1)
        path = str(tmp_path / "a.dat.gz")
        write_dat(ds, path)
        with pytest.raises(DatasetError):
            append_transactions(path, [["x"]])

    def test_dfs_roundtrip(self, tmp_path):
        ds = medical_cases(n_cases=20, seed=1)
        with MiniDfs(root_dir=str(tmp_path / "dfs"), n_datanodes=2, block_size=128) as dfs:
            ds.write_to_dfs(dfs, "/d.dat")
            back = dataset_from_dfs(dfs, "/d.dat")
        assert back.transactions == ds.transactions


class TestRetailGenerator:
    def test_shape(self):
        ds = retail_like(n_transactions=500, n_items=300, seed=2)
        stats = ds.stats()
        assert stats.n_transactions == 500
        assert stats.n_distinct_items <= 300
        assert 2 < stats.avg_transaction_length < 20

    def test_deterministic(self):
        a = retail_like(n_transactions=100, seed=3)
        b = retail_like(n_transactions=100, seed=3)
        assert a.transactions == b.transactions

    def test_power_law_head(self):
        """The most popular item must dwarf the median item's frequency."""
        ds = retail_like(n_transactions=3000, n_items=500, seed=2)
        counts = np.zeros(500, dtype=int)
        for t in ds.transactions:
            for i in t:
                counts[i] += 1
        ordered = np.sort(counts)[::-1]
        assert ordered[0] > 10 * max(1, ordered[250])

    def test_bundles_create_correlation(self):
        from repro.algorithms import fpgrowth

        ds = retail_like(
            n_transactions=3000, n_items=400, n_bundles=5, bundle_rate=0.4, seed=4
        )
        mined = fpgrowth(ds.transactions, 0.02)
        n = ds.n_transactions
        singles = {k[0]: v for k, v in mined.items() if len(k) == 1}
        lifts = [
            v / (singles[k[0]] * singles[k[1]] / n)
            for k, v in mined.items()
            if len(k) == 2
        ]
        assert lifts and max(lifts) > 3.0

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            retail_like(n_transactions=0)
        with pytest.raises(DatasetError):
            retail_like(zipf_exponent=1.0)
        with pytest.raises(DatasetError):
            retail_like(bundle_rate=1.5)

    def test_minable_end_to_end(self):
        from repro.core import Yafim
        from repro.engine import Context
        from repro.algorithms import apriori

        ds = retail_like(n_transactions=400, n_items=150, seed=5)
        with Context(backend="serial") as ctx:
            got = Yafim(ctx).run(ds.transactions, 0.05).itemsets
        assert got == apriori(ds.transactions, 0.05)
