import pytest

from repro.engine import Context


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


@pytest.fixture()
def tctx():
    with Context(backend="threads", parallelism=4) as c:
        yield c
