"""Caching semantics, broadcast variables, accumulators."""

import pytest

from repro.engine import Context, StorageLevel
from repro.engine.storage import BlockId


class TestCaching:
    def test_cache_avoids_recompute(self, ctx):
        calls = ctx.accumulator(0)

        def spy(x, a=None):
            a.add(1)
            return x

        rdd = ctx.parallelize(range(10), 2).map(lambda x, a=calls: spy(x, a)).cache()
        rdd.count()
        assert calls.value == 10
        rdd.count()
        assert calls.value == 10  # second action served from cache

    def test_uncached_recomputes(self, ctx):
        calls = ctx.accumulator(0)
        rdd = ctx.parallelize(range(10), 2).map(lambda x, a=calls: (a.add(1), x)[1])
        rdd.count()
        rdd.count()
        assert calls.value == 20

    def test_unpersist_frees_blocks(self, ctx):
        rdd = ctx.parallelize(range(10), 4).cache()
        rdd.count()
        assert ctx.block_manager.cached_block_count == 4
        rdd.unpersist()
        assert ctx.block_manager.cached_block_count == 0

    def test_lost_block_recomputed_from_lineage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x * 3).cache()
        assert rdd.sum() == 135
        dropped = ctx.block_manager.drop_block(BlockId(rdd.id, 0))
        assert dropped
        assert rdd.sum() == 135  # partition 0 recomputed transparently
        assert ctx.block_manager.cached_block_count == 2  # re-cached

    def test_memory_and_disk_level(self, ctx):
        rdd = ctx.parallelize(range(100), 2).persist(StorageLevel.MEMORY_AND_DISK)
        rdd.count()
        assert ctx.block_manager.cached_block_count == 2

    def test_cache_hit_metrics_recorded(self, ctx):
        rdd = ctx.parallelize(range(10), 2).cache()
        rdd.count()
        rdd.count()
        hits = sum(t.cache_hits for t in ctx.event_log.tasks)
        misses = sum(t.cache_misses for t in ctx.event_log.tasks)
        assert hits == 2
        assert misses == 2


class TestBroadcast:
    def test_value_visible_in_tasks(self, ctx):
        bc = ctx.broadcast({"factor": 7})
        got = ctx.parallelize([1, 2, 3], 3).map(lambda x, b=bc: x * b.value["factor"]).collect()
        assert got == [7, 14, 21]

    def test_one_transfer_per_worker(self):
        with Context(backend="threads", parallelism=4) as ctx:
            bc = ctx.broadcast(list(range(1000)))
            ctx.parallelize(range(64), 16).map(lambda x, b=bc: len(b.value)).collect()
            # 16 tasks but at most 4 workers -> at most 4 transfers
            assert 1 <= ctx.broadcast_manager.transfers <= 4
            assert ctx.broadcast_manager.transfer_bytes >= bc.size_bytes

    def test_repeated_access_not_recounted(self, ctx):
        bc = ctx.broadcast("payload")
        ctx.parallelize(range(10), 2).map(lambda x, b=bc: b.value).collect()
        first = ctx.broadcast_manager.transfers
        ctx.parallelize(range(10), 2).map(lambda x, b=bc: b.value).collect()
        assert ctx.broadcast_manager.transfers == first  # same worker set

    def test_destroy(self, ctx):
        bc = ctx.broadcast([1])
        assert ctx.broadcast_manager.live_count == 1
        bc.destroy()
        assert ctx.broadcast_manager.live_count == 0

    def test_size_estimated(self, ctx):
        bc = ctx.broadcast("x" * 10_000)
        assert bc.size_bytes > 9_000


class TestAccumulators:
    def test_driver_side_add(self, ctx):
        acc = ctx.accumulator(5)
        acc.add(3)
        assert acc.value == 8

    def test_task_side_add_merged_once(self, ctx):
        acc = ctx.accumulator(0)
        ctx.parallelize(range(100), 4).foreach(lambda x, a=acc: a.add(1))
        assert acc.value == 100

    def test_float_param_inferred(self, ctx):
        acc = ctx.accumulator(0.0)
        ctx.parallelize([0.5, 1.5], 2).foreach(lambda x, a=acc: a.add(x))
        assert acc.value == pytest.approx(2.0)

    def test_failed_attempts_do_not_double_count(self, ctx):
        acc = ctx.accumulator(0)
        ctx.fault_injector.fail_task(stage_kind="result", partition=0, times=1)
        ctx.parallelize(range(10), 2).foreach(lambda x, a=acc: a.add(1))
        assert acc.value == 10  # injected failure happened before dispatch

    def test_works_on_process_backend(self):
        with Context(backend="processes", parallelism=2) as ctx:
            acc = ctx.accumulator(0)
            ctx.parallelize(range(40), 4).foreach(lambda x, a=acc: a.add(1))
            assert acc.value == 40
