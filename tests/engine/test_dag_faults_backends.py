"""DAG scheduling, fault tolerance, lineage, executor backends."""

import pytest

from repro.common.errors import TaskFailedError
from repro.engine import Context, stage_count, to_networkx
from repro.engine.partitioner import HashPartitioner, RangePartitioner, compute_range_bounds
from repro.common.rng import stable_hash


class TestStageStructure:
    def test_narrow_pipeline_is_one_stage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x).filter(bool)
        assert stage_count(rdd) == 1

    def test_shuffle_adds_stage(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b)
        assert stage_count(rdd) == 2

    def test_two_shuffles(self, ctx):
        rdd = (
            ctx.parallelize([(1, 1)], 2)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key()
        )
        assert stage_count(rdd) == 3

    def test_networkx_export(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).map(lambda kv: kv).reduce_by_key(lambda a, b: a)
        g = to_networkx(rdd)
        assert g.number_of_nodes() == 3
        kinds = {d["kind"] for _u, _v, d in g.edges(data=True)}
        assert kinds == {"narrow", "shuffle"}

    def test_shuffle_reuse_across_jobs(self, ctx):
        rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 4).reduce_by_key(
            lambda a, b: a + b
        )
        rdd.collect()
        maps_before = sum(1 for t in ctx.event_log.tasks if t.kind == "shuffle_map")
        rdd.collect()  # second job reuses registered map outputs
        maps_after = sum(1 for t in ctx.event_log.tasks if t.kind == "shuffle_map")
        assert maps_after == maps_before

    def test_clear_shuffle_outputs_forces_rerun(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        ctx.clear_shuffle_outputs()
        rdd.collect()
        maps = sum(1 for t in ctx.event_log.tasks if t.kind == "shuffle_map")
        assert maps == 4  # 2 map tasks x 2 runs

    def test_job_summary_recorded(self, ctx):
        ctx.parallelize(range(4), 2).count()
        assert len(ctx.event_log.jobs) == 1
        assert ctx.event_log.jobs[0].n_tasks == 2


class TestFaultTolerance:
    def test_task_retry_succeeds(self, ctx):
        ctx.fault_injector.fail_task(stage_kind="result", partition=1, times=2)
        assert ctx.parallelize(range(10), 4).count() == 10
        assert ctx.fault_injector.injected == 2

    def test_shuffle_map_retry(self, ctx):
        ctx.fault_injector.fail_task(stage_kind="shuffle_map", times=1)
        got = (
            ctx.parallelize([(i % 2, 1) for i in range(10)], 3)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert got == {0: 5, 1: 5}

    def test_exhausted_retries_fail_job(self, ctx):
        ctx.fault_injector.fail_task(stage_kind="result", partition=0, times=99)
        with pytest.raises(TaskFailedError):
            ctx.parallelize(range(4), 2).count()

    def test_user_exception_propagates_after_retries(self, ctx):
        def boom(x):
            raise ValueError("user bug")

        with pytest.raises(TaskFailedError) as err:
            ctx.parallelize([1], 1).map(boom).collect()
        assert isinstance(err.value.cause, ValueError)

    def test_failed_attempts_recorded_in_event_log(self, ctx):
        ctx.fault_injector.fail_task(stage_kind="result", partition=0, times=1)
        ctx.parallelize(range(4), 2).count()
        failed = [t for t in ctx.event_log.tasks if t.kind.startswith("failed_")]
        assert len(failed) == 1

    def test_post_completion_failure_wastes_work_but_retries(self, ctx):
        """`when='after'` failures discard a finished task's result."""
        ran = ctx.accumulator(0)
        ctx.fault_injector.fail_task(stage_kind="result", partition=0, times=1, when="after")
        got = ctx.parallelize(range(10), 2).map(lambda x, a=ran: (a.add(1), x)[1]).sum()
        assert got == 45
        # partition 0's 5 elements were processed twice, but the failed
        # attempt's accumulator delta was NOT merged (no double count)
        assert ran.value == 10
        failed = [t for t in ctx.event_log.tasks if t.kind.startswith("failed_")]
        assert len(failed) == 1

    def test_after_mode_validation(self, ctx):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ctx.fault_injector.fail_task(when="sometimes")


PIPELINES = {
    "wordcount": lambda ctx: sorted(
        ctx.parallelize(["a b a", "c b"] * 5, 4)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    ),
    "chained_shuffles": lambda ctx: sorted(
        ctx.parallelize([(i % 4, i) for i in range(40)], 4)
        .group_by_key()
        .map_values(len)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key()
        .map_values(sorted)
        .collect()
    ),
    "distinct_union": lambda ctx: sorted(
        ctx.parallelize([1, 2, 2], 2).union(ctx.parallelize([2, 3], 1)).distinct().collect()
    ),
    "join": lambda ctx: sorted(
        ctx.parallelize([(1, "a"), (2, "b")], 2)
        .join(ctx.parallelize([(1, "x"), (2, "y")], 2))
        .collect()
    ),
    "cached_reuse": lambda ctx: (
        lambda rdd: (rdd.count(), rdd.sum())
    )(ctx.parallelize(range(100), 4).map(lambda x: x % 7).cache()),
}


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
@pytest.mark.parametrize("name", sorted(PIPELINES))
def test_backends_agree(backend, name):
    parallelism = 2 if backend == "processes" else 4
    with Context(backend=backend, parallelism=parallelism) as ctx:
        got = PIPELINES[name](ctx)
    with Context(backend="serial") as ctx:
        want = PIPELINES[name](ctx)
    assert got == want


class TestPartitioners:
    def test_hash_partitioner_stable(self):
        p = HashPartitioner(8)
        assert p.partition("abc") == stable_hash("abc") % 8
        assert all(0 <= p.partition((i, "x")) < 8 for i in range(100))

    def test_hash_partitioner_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_range_partitioner_orders_keys(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(15) == 1
        assert p.partition(25) == 2

    def test_range_partitioner_descending(self):
        p = RangePartitioner([10, 20], ascending=False)
        assert p.partition(5) == 2
        assert p.partition(25) == 0

    def test_compute_range_bounds(self):
        bounds = compute_range_bounds(list(range(100)), 4)
        assert len(bounds) == 3
        assert bounds == sorted(bounds)

    def test_compute_range_bounds_degenerate(self):
        assert compute_range_bounds([], 4) == []
        assert compute_range_bounds([1, 1, 1], 3) == [1]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestMakeExecutor:
    def test_backends_tuple_covers_factory(self):
        from repro.engine.executors import BACKENDS, make_executor

        assert BACKENDS == ("serial", "threads", "processes")
        for backend in ("serial", "threads"):
            executor = make_executor(backend, 2)
            executor.shutdown()

    def test_unknown_backend_error_names_valid_ones(self):
        from repro.engine.executors import BACKENDS, make_executor

        with pytest.raises(ValueError) as err:
            make_executor("thraeds")
        message = str(err.value)
        assert "thraeds" in message
        for backend in BACKENDS:
            assert backend in message
