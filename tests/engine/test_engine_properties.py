"""Property-based tests: the engine must agree with plain-Python semantics."""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Context

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def run(f):
    with Context(backend="serial") as ctx:
        return f(ctx)


class TestAgainstPython:
    @_settings
    @given(st.lists(st.integers(-100, 100), max_size=60), st.integers(1, 7))
    def test_collect_identity(self, xs, n):
        assert run(lambda ctx: ctx.parallelize(xs, n).collect()) == xs

    @_settings
    @given(st.lists(st.integers(-100, 100), max_size=60), st.integers(1, 7))
    def test_count(self, xs, n):
        assert run(lambda ctx: ctx.parallelize(xs, n).count()) == len(xs)

    @_settings
    @given(st.lists(st.text(alphabet="abcd", min_size=1, max_size=3), max_size=50), st.integers(1, 5))
    def test_wordcount_matches_counter(self, words, n):
        got = run(
            lambda ctx: dict(
                ctx.parallelize(words, n)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
        )
        assert got == dict(Counter(words))

    @_settings
    @given(st.lists(st.integers(-50, 50), max_size=50), st.integers(1, 5))
    def test_distinct_matches_set(self, xs, n):
        got = run(lambda ctx: sorted(ctx.parallelize(xs, n).distinct().collect()))
        assert got == sorted(set(xs))

    @_settings
    @given(st.lists(st.integers(-1000, 1000), max_size=60), st.integers(1, 6), st.integers(1, 6))
    def test_sort_by_matches_sorted(self, xs, n, m):
        got = run(lambda ctx: ctx.parallelize(xs, n).sort_by(lambda x: x, num_partitions=m).collect())
        assert got == sorted(xs)

    @_settings
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=50),
        st.integers(1, 5),
    )
    def test_group_by_key_complete(self, pairs, n):
        got = run(
            lambda ctx: {
                k: sorted(v)
                for k, v in ctx.parallelize(pairs, n).group_by_key().collect()
            }
        )
        want: dict[int, list[int]] = {}
        for k, v in pairs:
            want.setdefault(k, []).append(v)
        assert got == {k: sorted(v) for k, v in want.items()}

    @_settings
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50), st.integers(1, 5))
    def test_reduce_max(self, xs, n):
        got = run(lambda ctx: ctx.parallelize(xs, n).reduce(max))
        assert got == max(xs)

    @_settings
    @given(st.lists(st.integers(-20, 20), max_size=40), st.integers(1, 4), st.integers(0, 10))
    def test_take_prefix(self, xs, n, k):
        assert run(lambda ctx: ctx.parallelize(xs, n).take(k)) == xs[:k]

    @_settings
    @given(
        st.lists(st.tuples(st.integers(0, 4), st.text(alphabet="xy", max_size=2)), max_size=30),
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 9)), max_size=30),
    )
    def test_join_matches_nested_loop(self, left, right):
        got = run(lambda ctx: sorted(
            ctx.parallelize(left, 3).join(ctx.parallelize(right, 2)).collect()
        ))
        want = sorted((k, (a, b)) for k, a in left for k2, b in right if k == k2)
        assert got == want

    @_settings
    @given(st.lists(st.integers(0, 30), max_size=40))
    def test_union_is_concatenation(self, xs):
        half = len(xs) // 2
        got = run(lambda ctx: ctx.parallelize(xs[:half], 2).union(
            ctx.parallelize(xs[half:], 3)
        ).collect())
        assert got == xs
