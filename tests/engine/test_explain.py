"""Execution-plan explain() tests."""

from repro.engine.lineage import explain


class TestExplain:
    def test_single_stage(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map(lambda x: x).filter(bool)
        plan = explain(rdd)
        assert plan.count("Stage") == 1
        assert "result" in plan
        assert "ParallelCollectionRDD" in plan
        assert "MapPartitionsRDD" in plan

    def test_shuffle_creates_two_stages(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b, 3)
        plan = explain(rdd)
        assert plan.count("Stage") == 2
        assert "shuffle-map" in plan
        lines = plan.splitlines()
        assert "Stage 0" in lines[0]  # parent stage listed first
        assert "3 task(s)" in lines[2]  # result stage over 3 reduce buckets

    def test_shared_shuffle_listed_once(self, ctx):
        base = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b)
        chained = base.map_values(lambda v: v + 1).group_by_key()
        plan = explain(chained)
        assert plan.count("shuffle-map") == 2  # two distinct shuffles only

    def test_join_plan_has_three_stages(self, ctx):
        a = ctx.parallelize([(1, "a")], 2)
        b = ctx.parallelize([(1, "b")], 2)
        plan = explain(a.join(b))
        assert plan.count("shuffle-map") == 2
        assert plan.count("Stage") == 3

    def test_matches_executed_stages(self, ctx):
        rdd = (
            ctx.parallelize([(i % 3, i) for i in range(12)], 3)
            .group_by_key()
            .map_values(len)
        )
        plan_stages = explain(rdd).count("Stage")
        rdd.collect()
        executed = len({t.stage_id for t in ctx.event_log.tasks})
        assert plan_stages == executed
