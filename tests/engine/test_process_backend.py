"""Process-pool executor specifics: cloudpickled tasks, preloaded inputs.

The process backend runs tasks in worker processes that cannot see the
driver's block/shuffle/broadcast managers; the scheduler must resolve all
driver-resident inputs into the shipped task.  These tests exercise each
resolution path.
"""

import pytest

from repro.engine import Context
from repro.hdfs import MiniDfs


@pytest.fixture()
def pctx():
    with Context(backend="processes", parallelism=2) as c:
        yield c


class TestProcessBackend:
    def test_text_file(self, pctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=32) as dfs:
            lines = [f"line-{i}" for i in range(20)]
            dfs.write_lines("/f", lines)
            assert pctx.text_file(dfs, "/f").collect() == lines

    def test_shuffle_input_preloaded(self, pctx):
        got = (
            pctx.parallelize([(i % 3, 1) for i in range(30)], 4)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert got == {0: 10, 1: 10, 2: 10}

    def test_chained_shuffles(self, pctx):
        got = (
            pctx.parallelize([(i % 3, i) for i in range(30)], 4)
            .group_by_key()
            .map_values(len)
            .map(lambda kv: (kv[1], 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert got == {10: 3}

    def test_broadcast_value_ships(self, pctx):
        bc = pctx.broadcast({"mult": 5})
        got = pctx.parallelize([1, 2, 3], 3).map(lambda x, b=bc: x * b.value["mult"]).collect()
        assert got == [5, 10, 15]

    def test_cached_block_preloaded_on_second_job(self, pctx):
        rdd = pctx.parallelize(range(20), 4).map(lambda x: x * 2).cache()
        assert rdd.sum() == 380  # computes + caches back to driver
        assert pctx.block_manager.cached_block_count == 4
        assert rdd.sum() == 380  # served from preloaded driver blocks

    def test_cogroup_preloads_both_sides(self, pctx):
        a = pctx.parallelize([(1, "x"), (2, "y")], 2)
        b = pctx.parallelize([(1, "z")], 2)
        got = sorted(a.join(b).collect())
        assert got == [(1, ("x", "z"))]

    def test_cartesian(self, pctx):
        got = sorted(
            pctx.parallelize([1, 2], 2).cartesian(pctx.parallelize("ab", 1)).collect()
        )
        assert got == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_fault_retry(self, pctx):
        pctx.fault_injector.fail_task(stage_kind="result", partition=0, times=1)
        assert pctx.parallelize(range(10), 2).count() == 10

    def test_union_of_sources(self, pctx):
        a = pctx.parallelize([1, 2], 2)
        b = pctx.parallelize([3], 1)
        assert a.union(b).collect() == [1, 2, 3]

    def test_sort_by(self, pctx):
        data = [5, 1, 4, 2, 3]
        assert pctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)
