"""RDD transformations and actions (single-key-free surface)."""

import pytest

from repro.common.errors import EngineError
from repro.hdfs import MiniDfs


class TestCreation:
    def test_parallelize_partition_count(self, ctx):
        rdd = ctx.parallelize(range(10), 4)
        assert rdd.num_partitions == 4
        assert rdd.collect() == list(range(10))

    def test_parallelize_preserves_order(self, ctx):
        data = [5, 3, 9, 1]
        assert ctx.parallelize(data, 3).collect() == data

    def test_parallelize_more_slices_than_items(self, ctx):
        rdd = ctx.parallelize([1, 2], 5)
        assert rdd.num_partitions == 5
        assert rdd.collect() == [1, 2]

    def test_parallelize_invalid_slices(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([1], 0)

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().collect() == []
        assert ctx.empty_rdd().is_empty()


class TestNarrowTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_flat_map(self, ctx):
        got = ctx.parallelize(["a b", "c"], 2).flat_map(str.split).collect()
        assert got == ["a", "b", "c"]

    def test_filter(self, ctx):
        got = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0).collect()
        assert got == [0, 2, 4, 6, 8]

    def test_map_partitions(self, ctx):
        got = ctx.parallelize(range(8), 4).map_partitions(lambda it: [sum(it)]).collect()
        assert got == [1, 5, 9, 13]

    def test_map_partitions_with_index(self, ctx):
        got = (
            ctx.parallelize(range(4), 2)
            .map_partitions_with_index(lambda i, it: [(i, list(it))])
            .collect()
        )
        assert got == [(0, [0, 1]), (1, [2, 3])]

    def test_glom(self, ctx):
        assert ctx.parallelize(range(4), 2).glom().collect() == [[0, 1], [2, 3]]

    def test_key_by(self, ctx):
        assert ctx.parallelize([3], 1).key_by(lambda x: x % 2).collect() == [(1, 3)]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3], 1)
        u = a.union(b)
        assert u.num_partitions == 3
        assert u.collect() == [1, 2, 3]

    def test_distinct(self, ctx):
        got = sorted(ctx.parallelize([1, 2, 1, 3, 2], 3).distinct().collect())
        assert got == [1, 2, 3]

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        a = rdd.sample(0.3, seed=5).collect()
        b = rdd.sample(0.3, seed=5).collect()
        assert a == b
        assert 150 < len(a) < 450

    def test_sample_bounds(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        assert rdd.sample(0.0).collect() == []
        assert rdd.sample(1.0).collect() == list(range(10))
        with pytest.raises(ValueError):
            rdd.sample(1.5)

    def test_zip_with_index(self, ctx):
        got = ctx.parallelize(["a", "b", "c", "d"], 3).zip_with_index().collect()
        assert got == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]

    def test_coalesce(self, ctx):
        rdd = ctx.parallelize(range(10), 5).coalesce(2)
        assert rdd.num_partitions == 2
        assert rdd.collect() == list(range(10))

    def test_coalesce_cannot_grow(self, ctx):
        assert ctx.parallelize(range(4), 2).coalesce(8).num_partitions == 2

    def test_repartition(self, ctx):
        rdd = ctx.parallelize(range(20), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))

    def test_sort_by_ascending(self, ctx):
        data = [5, 3, 8, 1, 9, 2, 7, 0, 6, 4]
        assert ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_sort_by_descending(self, ctx):
        data = [5, 3, 8, 1]
        got = ctx.parallelize(data, 2).sort_by(lambda x: x, ascending=False).collect()
        assert got == sorted(data, reverse=True)

    def test_sort_by_key_func(self, ctx):
        data = ["bbb", "a", "cc"]
        got = ctx.parallelize(data, 2).sort_by(len).collect()
        assert got == ["a", "cc", "bbb"]

    def test_laziness(self, ctx):
        calls = []

        def record(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1, 2], 1).map(record)
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [1, 2]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(17), 4).count() == 17

    def test_first(self, ctx):
        assert ctx.parallelize([9, 1], 2).first() == 9

    def test_first_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().first()

    def test_take_spans_partitions(self, ctx):
        assert ctx.parallelize(range(10), 5).take(7) == list(range(7))

    def test_take_more_than_size(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_take_zero(self, ctx):
        assert ctx.parallelize([1], 1).take(0) == []

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 6), 3).reduce(lambda a, b: a * b) == 120

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([4], 3).reduce(lambda a, b: a + b) == 4

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).fold(0, lambda a, b: a + b) == 6

    def test_fold_zero_not_shared(self, ctx):
        got = ctx.parallelize([[1], [2]], 2).fold([], lambda a, b: a + b)
        assert sorted(got) == [1, 2]

    def test_aggregate(self, ctx):
        total, n = ctx.parallelize(range(10), 3).aggregate(
            (0, 0), lambda acc, x: (acc[0] + x, acc[1] + 1), lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        assert (total, n) == (45, 10)

    def test_sum_max_min_mean(self, ctx):
        rdd = ctx.parallelize([4.0, 1.0, 7.0], 2)
        assert rdd.sum() == 12.0
        assert rdd.max() == 7.0
        assert rdd.min() == 1.0
        assert rdd.mean() == pytest.approx(4.0)

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().mean()

    def test_count_by_value(self, ctx):
        got = ctx.parallelize(list("abca"), 2).count_by_value()
        assert got == {"a": 2, "b": 1, "c": 1}

    def test_top_and_take_ordered(self, ctx):
        rdd = ctx.parallelize([5, 1, 9, 3, 7], 3)
        assert rdd.top(2) == [9, 7]
        assert rdd.take_ordered(2) == [1, 3]
        assert rdd.top(2, key=lambda x: -x) == [1, 3]

    def test_foreach_with_accumulator(self, ctx):
        acc = ctx.accumulator(0)
        ctx.parallelize(range(5), 2).foreach(lambda x, a=acc: a.add(x))
        assert acc.value == 10

    def test_is_empty(self, ctx):
        assert not ctx.parallelize([1], 1).is_empty()
        assert ctx.parallelize([], 3).is_empty()


class TestTextFileIntegration:
    def test_text_file_roundtrip(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=32) as dfs:
            lines = [f"row {i} {'x' * (i % 5)}" for i in range(30)]
            dfs.write_lines("/in.txt", lines)
            rdd = ctx.text_file(dfs, "/in.txt")
            assert rdd.num_partitions > 1  # small blocks -> several splits
            assert rdd.collect() == lines

    def test_save_as_text_file(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2) as dfs:
            ctx.parallelize(range(6), 3).save_as_text_file(dfs, "/out")
            parts = dfs.list_files("/out")
            assert len(parts) == 3
            all_lines = [ln for p in parts for ln in dfs.read_lines(p)]
            assert sorted(map(int, all_lines)) == list(range(6))

    def test_text_file_records_input_bytes(self, ctx, tmp_path):
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=1, block_size=16) as dfs:
            dfs.write_lines("/f", ["abc"] * 20)
            ctx.text_file(dfs, "/f").count()
            total_input = sum(t.input_bytes for t in ctx.event_log.tasks)
            assert total_input == dfs.file_length("/f")
