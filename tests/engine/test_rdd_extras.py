"""Set-style, cartesian, sampling and histogram operators."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import EngineError
from repro.engine import Context

_settings = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestIntersection:
    def test_basic(self, ctx):
        a = ctx.parallelize([1, 2, 3, 3], 2)
        b = ctx.parallelize([2, 3, 4], 2)
        assert sorted(a.intersection(b).collect()) == [2, 3]

    def test_empty_result(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([2], 1)
        assert a.intersection(b).collect() == []

    def test_distinct_semantics(self, ctx):
        a = ctx.parallelize([1, 1, 1], 2)
        b = ctx.parallelize([1, 1], 1)
        assert a.intersection(b).collect() == [1]

    @_settings
    @given(st.sets(st.integers(0, 30)), st.sets(st.integers(0, 30)))
    def test_matches_set_intersection(self, xs, ys):
        with Context(backend="serial") as ctx:
            got = sorted(
                ctx.parallelize(xs, 3).intersection(ctx.parallelize(ys, 2)).collect()
            )
        assert got == sorted(xs & ys)


class TestSubtract:
    def test_basic(self, ctx):
        a = ctx.parallelize([1, 2, 2, 3], 2)
        b = ctx.parallelize([2], 1)
        assert sorted(a.subtract(b).collect()) == [1, 3]

    def test_keeps_duplicates_of_survivors(self, ctx):
        a = ctx.parallelize([1, 1, 2], 2)
        b = ctx.parallelize([2], 1)
        assert sorted(a.subtract(b).collect()) == [1, 1]

    @_settings
    @given(st.lists(st.integers(0, 20), max_size=30), st.sets(st.integers(0, 20)))
    def test_matches_list_filter(self, xs, ys):
        with Context(backend="serial") as ctx:
            got = sorted(
                ctx.parallelize(xs, 3).subtract(ctx.parallelize(ys, 2)).collect()
            )
        assert got == sorted(x for x in xs if x not in ys)


class TestCartesian:
    def test_basic(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize(["x", "y"], 1)
        got = sorted(a.cartesian(b).collect())
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_partition_count(self, ctx):
        a = ctx.parallelize(range(4), 3)
        b = ctx.parallelize(range(2), 2)
        assert a.cartesian(b).num_partitions == 6

    def test_empty_side(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([], 2)
        assert a.cartesian(b).collect() == []

    def test_count_is_product(self, ctx):
        a = ctx.parallelize(range(7), 2)
        b = ctx.parallelize(range(5), 3)
        assert a.cartesian(b).count() == 35

    def test_with_cached_parent(self, ctx):
        a = ctx.parallelize(range(3), 2).cache()
        a.count()
        got = a.cartesian(ctx.parallelize([9], 1)).collect()
        assert sorted(got) == [(0, 9), (1, 9), (2, 9)]


class TestTakeSample:
    def test_exact_size(self, ctx):
        got = ctx.parallelize(range(100), 4).take_sample(10, seed=1)
        assert len(got) == 10
        assert len(set(got)) == 10  # without replacement

    def test_n_larger_than_rdd(self, ctx):
        assert sorted(ctx.parallelize(range(5), 2).take_sample(10)) == list(range(5))

    def test_zero(self, ctx):
        assert ctx.parallelize(range(5), 2).take_sample(0) == []

    def test_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        assert rdd.take_sample(20, seed=3) == rdd.take_sample(20, seed=3)

    def test_members_of_source(self, ctx):
        got = ctx.parallelize(range(50), 3).take_sample(7, seed=2)
        assert all(0 <= x < 50 for x in got)


class TestHistogram:
    def test_even_buckets(self, ctx):
        edges, counts = ctx.parallelize([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 3).histogram(2)
        assert edges == [0, 4.5, 9]
        assert counts == [5, 5]

    def test_explicit_edges(self, ctx):
        edges, counts = ctx.parallelize([1, 2, 3, 10, 20], 2).histogram([0, 5, 25])
        assert counts == [3, 2]

    def test_out_of_range_ignored(self, ctx):
        _, counts = ctx.parallelize([-5, 1, 99], 2).histogram([0, 2])
        assert counts == [1]

    def test_right_closed_last_bucket(self, ctx):
        _, counts = ctx.parallelize([10], 1).histogram([0, 5, 10])
        assert counts == [0, 1]

    def test_constant_data(self, ctx):
        edges, counts = ctx.parallelize([4, 4, 4], 2).histogram(3)
        assert edges == [4, 4]
        assert sum(counts) == 3

    def test_invalid_buckets(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([1], 1).histogram(0)
        with pytest.raises(EngineError):
            ctx.parallelize([1], 1).histogram([3, 1])

    @_settings
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60), st.integers(1, 8))
    def test_total_count_preserved(self, xs, n_buckets):
        with Context(backend="serial") as ctx:
            _, counts = ctx.parallelize(xs, 3).histogram(n_buckets)
        assert sum(counts) == len(xs)
