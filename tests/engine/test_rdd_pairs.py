"""Pair-RDD (shuffle) operations."""

from collections import Counter

import pytest

from repro.engine import HashPartitioner


class TestReduceByKey:
    def test_word_count(self, ctx):
        words = "the quick brown fox the lazy dog the end".split()
        got = dict(
            ctx.parallelize(words, 3)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert got == dict(Counter(words))

    def test_respects_num_partitions(self, ctx):
        rdd = ctx.parallelize([(i % 5, 1) for i in range(50)], 4).reduce_by_key(
            lambda a, b: a + b, num_partitions=7
        )
        assert rdd.num_partitions == 7
        assert dict(rdd.collect()) == {k: 10 for k in range(5)}

    def test_non_commutative_safe_because_associative(self, ctx):
        # String concatenation is associative; per-partition order is stable.
        pairs = [("k", c) for c in "abcdef"]
        got = dict(
            ctx.parallelize(pairs, 1).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert got == {"k": "abcdef"}

    def test_single_key_many_values(self, ctx):
        got = dict(
            ctx.parallelize([("k", 1)] * 1000, 8).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert got == {"k": 1000}


class TestCombineByKey:
    def test_average_by_key(self, ctx):
        data = [("a", 1.0), ("a", 3.0), ("b", 5.0)]
        sums = (
            ctx.parallelize(data, 2)
            .combine_by_key(
                lambda v: (v, 1),
                lambda c, v: (c[0] + v, c[1] + 1),
                lambda c1, c2: (c1[0] + c2[0], c1[1] + c2[1]),
            )
            .map_values(lambda c: c[0] / c[1])
            .collect_as_map()
        )
        assert sums == {"a": 2.0, "b": 5.0}

    def test_without_map_side_combine(self, ctx):
        data = [("a", 1), ("a", 2), ("b", 3)]
        got = (
            ctx.parallelize(data, 2)
            .combine_by_key(
                lambda v: [v],
                lambda c, v: c + [v],
                lambda a, b: a + b,
                map_side_combine=False,
            )
            .collect_as_map()
        )
        assert sorted(got["a"]) == [1, 2]
        assert got["b"] == [3]


class TestGroupByKey:
    def test_groups_all_values(self, ctx):
        data = [(i % 3, i) for i in range(12)]
        got = ctx.parallelize(data, 4).group_by_key().collect_as_map()
        assert {k: sorted(v) for k, v in got.items()} == {
            0: [0, 3, 6, 9],
            1: [1, 4, 7, 10],
            2: [2, 5, 8, 11],
        }

    def test_group_by_function(self, ctx):
        got = ctx.parallelize(range(6), 2).group_by(lambda x: x % 2).collect_as_map()
        assert sorted(got[0]) == [0, 2, 4]
        assert sorted(got[1]) == [1, 3, 5]

    def test_skewed_key_groups_in_place(self, ctx):
        """Regression: the reduce-side merge must mutate the accumulator.

        ``acc + [v]`` copies the accumulated list on every record — O(n^2)
        per key — which a hot key turns into a stall.  Pin both the merge
        identity (same list object back) and the skewed result.
        """
        data = [("hot", i) for i in range(10_000)] + [("cold", -1)]
        got = ctx.parallelize(data, 8).group_by_key().collect_as_map()
        assert sorted(got["hot"]) == list(range(10_000))
        assert got["cold"] == [-1]

        agg = ctx.parallelize(data, 2).group_by_key().shuffle_dep.aggregator
        acc = agg.create_combiner("x")
        assert agg.merge_value(acc, "y") is acc
        assert agg.merge_combiners(acc, ["z"]) is acc
        assert acc == ["x", "y", "z"]


class TestAggregateAndFoldByKey:
    def test_fold_by_key(self, ctx):
        data = [("a", 2), ("a", 3), ("b", 4)]
        got = ctx.parallelize(data, 2).fold_by_key(0, lambda a, b: a + b).collect_as_map()
        assert got == {"a": 5, "b": 4}

    def test_aggregate_by_key_zero_isolated(self, ctx):
        data = [("a", 1), ("a", 2), ("b", 3)]
        got = (
            ctx.parallelize(data, 2)
            .aggregate_by_key([], lambda acc, v: acc + [v], lambda a, b: a + b)
            .collect_as_map()
        )
        assert sorted(got["a"]) == [1, 2]
        assert got["b"] == [3]


class TestJoins:
    @pytest.fixture()
    def left_right(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b"), (2, "c")], 2)
        right = ctx.parallelize([(2, "x"), (3, "y")], 2)
        return left, right

    def test_inner_join(self, left_right):
        left, right = left_right
        got = sorted(left.join(right).collect())
        assert got == [(2, ("b", "x")), (2, ("c", "x"))]

    def test_left_outer_join(self, left_right):
        left, right = left_right
        got = sorted(left.left_outer_join(right).collect())
        assert got == [(1, ("a", None)), (2, ("b", "x")), (2, ("c", "x"))]

    def test_right_outer_join(self, left_right):
        left, right = left_right
        got = sorted(left.right_outer_join(right).collect())
        assert got == [(2, ("b", "x")), (2, ("c", "x")), (3, (None, "y"))]

    def test_full_outer_join(self, left_right):
        left, right = left_right
        got = sorted(left.full_outer_join(right).collect())
        assert got == [
            (1, ("a", None)),
            (2, ("b", "x")),
            (2, ("c", "x")),
            (3, (None, "y")),
        ]

    def test_cogroup(self, left_right):
        left, right = left_right
        got = {k: (sorted(a), sorted(b)) for k, (a, b) in left.cogroup(right).collect()}
        assert got == {1: (["a"], []), 2: (["b", "c"], ["x"]), 3: ([], ["y"])}

    def test_subtract_by_key(self, left_right):
        left, right = left_right
        got = sorted(left.subtract_by_key(right).collect())
        assert got == [(1, "a")]


class TestPairHelpers:
    def test_keys_values(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b")], 2)
        assert rdd.keys().collect() == [1, 2]
        assert rdd.values().collect() == ["a", "b"]

    def test_map_values_preserves_partitioning(self, ctx):
        shuffled = ctx.parallelize([(1, 2), (3, 4)], 2).reduce_by_key(lambda a, b: a + b)
        mapped = shuffled.map_values(lambda v: v * 10)
        assert mapped.partitioner == shuffled.partitioner

    def test_flat_map_values(self, ctx):
        got = sorted(
            ctx.parallelize([(1, "ab")], 1).flat_map_values(list).collect()
        )
        assert got == [(1, "a"), (1, "b")]

    def test_count_by_key(self, ctx):
        got = ctx.parallelize([("a", 1), ("a", 9), ("b", 0)], 2).count_by_key()
        assert got == {"a": 2, "b": 1}

    def test_lookup_on_unpartitioned(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
        assert sorted(rdd.lookup("a")) == [1, 3]

    def test_lookup_on_partitioned_scans_one_partition(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(20)], 4).reduce_by_key(
            lambda a, b: a, num_partitions=5
        )
        rdd.collect()  # materialize shuffle
        mark = ctx.event_log.mark()
        assert rdd.lookup(7) == [7]
        new_tasks = [t for t in ctx.event_log.tasks_since(mark) if t.kind == "result"]
        assert len(new_tasks) == 1  # only the owning partition ran

    def test_partition_by_places_keys(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(i, None) for i in range(30)], 4).partition_by(part)
        chunks = rdd.glom().collect()
        for idx, chunk in enumerate(chunks):
            for k, _ in chunk:
                assert part.partition(k) == idx

    def test_partition_by_same_partitioner_is_noop(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(1, 1)], 2).partition_by(part)
        assert rdd.partition_by(part) is rdd
