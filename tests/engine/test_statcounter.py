"""StatCounter and RDD.stats() tests."""

import math
import statistics

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Context
from repro.engine.statcounter import StatCounter

_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

floats = st.floats(-1e6, 1e6, allow_nan=False)


class TestStatCounter:
    def test_single_value(self):
        c = StatCounter().add(5.0)
        assert c.count == 1
        assert c.mean == 5.0
        assert c.variance == 0.0
        assert math.isnan(c.sample_variance)
        assert c.min_value == c.max_value == 5.0

    def test_empty(self):
        c = StatCounter()
        assert c.count == 0
        assert math.isnan(c.variance)
        assert math.isnan(c.stdev)

    def test_known_values(self):
        c = StatCounter()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            c.add(x)
        assert c.mean == pytest.approx(5.0)
        assert c.stdev == pytest.approx(2.0)
        assert c.sum == pytest.approx(40.0)

    def test_merge_with_empty(self):
        a = StatCounter().add(1.0)
        a.merge(StatCounter())
        assert a.count == 1
        b = StatCounter()
        b.merge(StatCounter().add(2.0))
        assert b.mean == 2.0

    @_settings
    @given(st.lists(floats, min_size=2, max_size=50), st.integers(1, 5))
    def test_merge_equals_sequential(self, xs, cut_point):
        cut = min(cut_point * len(xs) // 6, len(xs))
        left, right = StatCounter(), StatCounter()
        for x in xs[:cut]:
            left.add(x)
        for x in xs[cut:]:
            right.add(x)
        left.merge(right)
        assert left.count == len(xs)
        assert left.mean == pytest.approx(statistics.fmean(xs), rel=1e-9, abs=1e-6)
        assert left.variance == pytest.approx(
            statistics.pvariance(xs), rel=1e-6, abs=1e-4
        )
        assert left.min_value == min(xs)
        assert left.max_value == max(xs)

    @_settings
    @given(st.lists(floats, min_size=2, max_size=40))
    def test_sample_variance_matches_statistics(self, xs):
        c = StatCounter()
        for x in xs:
            c.add(x)
        assert c.sample_variance == pytest.approx(
            statistics.variance(xs), rel=1e-6, abs=1e-4
        )


class TestRddStats:
    def test_stats_across_partitions(self, ctx):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = ctx.parallelize(data, 3).stats()
        assert stats.count == 8
        assert stats.mean == pytest.approx(5.0)
        assert stats.stdev == pytest.approx(2.0)
        assert stats.min_value == 2.0
        assert stats.max_value == 9.0

    def test_stdev_and_variance_shortcuts(self, ctx):
        rdd = ctx.parallelize([1.0, 3.0], 2)
        assert rdd.variance() == pytest.approx(1.0)
        assert rdd.stdev() == pytest.approx(1.0)

    def test_stats_with_empty_partitions(self, ctx):
        stats = ctx.parallelize([7.0], 5).stats()
        assert stats.count == 1
        assert stats.mean == 7.0

    @_settings
    @given(st.lists(floats, min_size=1, max_size=40), st.integers(1, 6))
    def test_matches_statistics_module(self, xs, n):
        with Context(backend="serial") as ctx:
            stats = ctx.parallelize(xs, n).stats()
        assert stats.mean == pytest.approx(statistics.fmean(xs), rel=1e-9, abs=1e-6)
        assert stats.count == len(xs)
