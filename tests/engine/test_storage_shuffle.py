"""Block manager and shuffle manager unit tests."""

import pytest

from repro.common.errors import EngineError
from repro.engine.shuffle import ShuffleManager
from repro.engine.storage import BlockId, BlockManager, StorageLevel


class TestBlockManager:
    def test_put_get_memory(self):
        bm = BlockManager()
        block = BlockId(1, 0)
        bm.put(block, [1, 2, 3], StorageLevel.MEMORY_ONLY)
        assert bm.get(block) == [1, 2, 3]
        assert bm.metrics.memory_hits == 1
        bm.close()

    def test_miss(self):
        bm = BlockManager()
        assert bm.get(BlockId(9, 9)) is None
        assert bm.metrics.misses == 1
        bm.close()

    def test_disk_only_spills_immediately(self):
        bm = BlockManager()
        block = BlockId(2, 0)
        bm.put(block, list(range(100)), StorageLevel.DISK_ONLY)
        assert bm.metrics.spills == 1
        assert bm.get(block) == list(range(100))
        assert bm.metrics.disk_hits == 1
        bm.close()

    def test_lru_eviction_memory_only_drops(self):
        bm = BlockManager(memory_limit_bytes=1000)
        data = list(range(150))  # ~316 bytes pickled
        for i in range(6):
            bm.put(BlockId(1, i), data, StorageLevel.MEMORY_ONLY)
        assert bm.metrics.evictions > 0
        assert bm.get(BlockId(1, 0)) is None  # oldest evicted, gone
        assert bm.get(BlockId(1, 5)) == data  # newest retained
        bm.close()

    def test_lru_eviction_memory_and_disk_spills(self):
        bm = BlockManager(memory_limit_bytes=1000)
        data = list(range(150))
        for i in range(6):
            bm.put(BlockId(1, i), data, StorageLevel.MEMORY_AND_DISK)
        assert bm.metrics.evictions > 0
        assert bm.metrics.spills == bm.metrics.evictions
        assert bm.get(BlockId(1, 0)) == data  # reloaded from disk
        bm.close()

    def test_lru_order_updated_on_access(self):
        bm = BlockManager(memory_limit_bytes=700)
        data = list(range(150))
        bm.put(BlockId(1, 0), data, StorageLevel.MEMORY_ONLY)
        bm.put(BlockId(1, 1), data, StorageLevel.MEMORY_ONLY)
        bm.get(BlockId(1, 0))  # refresh block 0
        for i in range(2, 7):
            bm.put(BlockId(1, i), data, StorageLevel.MEMORY_ONLY)
        # block 1 should be evicted before block 0
        assert bm.get(BlockId(1, 1)) is None
        bm.close()

    def test_remove_rdd(self):
        bm = BlockManager()
        bm.put(BlockId(1, 0), [1], StorageLevel.MEMORY_ONLY)
        bm.put(BlockId(1, 1), [2], StorageLevel.DISK_ONLY)
        bm.put(BlockId(2, 0), [3], StorageLevel.MEMORY_ONLY)
        assert bm.remove_rdd(1) == 2
        assert bm.get(BlockId(1, 0)) is None
        assert bm.get(BlockId(2, 0)) == [3]
        bm.close()

    def test_drop_block(self):
        bm = BlockManager()
        bm.put(BlockId(1, 0), [1], StorageLevel.MEMORY_ONLY)
        assert bm.drop_block(BlockId(1, 0))
        assert not bm.drop_block(BlockId(1, 0))
        assert bm.get(BlockId(1, 0)) is None
        bm.close()

    def test_clear(self):
        bm = BlockManager()
        bm.put(BlockId(1, 0), [1], StorageLevel.MEMORY_ONLY)
        bm.put(BlockId(1, 1), [1], StorageLevel.DISK_ONLY)
        bm.clear()
        assert bm.cached_block_count == 0
        assert bm.metrics.memory_bytes == 0
        bm.close()


class TestShuffleManager:
    def test_roundtrip(self):
        sm = ShuffleManager()
        sm.register_shuffle(0, num_maps=2)
        sm.put_map_output(0, 0, [[("a", 1)], [("b", 2)]])
        sm.put_map_output(0, 1, [[("a", 3)], []])
        buckets, nbytes = sm.fetch(0, 0)
        assert buckets == [[("a", 1)], [("a", 3)]]
        assert nbytes > 0
        buckets, _ = sm.fetch(0, 1)
        assert buckets == [[("b", 2)], []]

    def test_is_complete(self):
        sm = ShuffleManager()
        sm.register_shuffle(1, num_maps=2)
        assert not sm.is_complete(1)
        sm.put_map_output(1, 0, [[]])
        assert not sm.is_complete(1)
        sm.put_map_output(1, 1, [[]])
        assert sm.is_complete(1)

    def test_is_complete_counts_retried_map_once(self):
        # The completeness check is a registered-map counter, not a scan:
        # a retried map task re-putting its output must not double-count.
        sm = ShuffleManager()
        sm.register_shuffle(3, num_maps=2)
        sm.put_map_output(3, 0, [[("a", 1)]])
        sm.put_map_output(3, 0, [[("a", 1)]])  # task retry
        assert not sm.is_complete(3)
        sm.put_map_output(3, 1, [[]])
        assert sm.is_complete(3)

    def test_is_complete_reset_by_removal(self):
        sm = ShuffleManager()
        sm.register_shuffle(4, num_maps=1)
        sm.put_map_output(4, 0, [[("k", 1)]])
        assert sm.is_complete(4)
        sm.remove_shuffle(4)
        assert not sm.is_complete(4)
        sm.register_shuffle(5, num_maps=1)
        sm.put_map_output(5, 0, [[("k", 1)]])
        assert sm.is_complete(5)
        sm.clear()
        assert not sm.is_complete(5)

    def test_fetch_unknown_shuffle(self):
        with pytest.raises(EngineError):
            ShuffleManager().fetch(42, 0)

    def test_fetch_missing_map_output(self):
        sm = ShuffleManager()
        sm.register_shuffle(0, num_maps=2)
        sm.put_map_output(0, 0, [[("k", 1)]])
        with pytest.raises(EngineError):
            sm.fetch(0, 0)

    def test_remove_shuffle(self):
        sm = ShuffleManager()
        sm.register_shuffle(0, num_maps=1)
        sm.put_map_output(0, 0, [[("k", 1)]])
        sm.remove_shuffle(0)
        with pytest.raises(EngineError):
            sm.fetch(0, 0)

    def test_metrics_accumulate(self):
        sm = ShuffleManager()
        sm.register_shuffle(0, num_maps=1)
        sm.put_map_output(0, 0, [[("k", 1)], [("j", 2)]])
        assert sm.metrics.blocks_written == 2
        assert sm.metrics.bytes_written > 0
        sm.fetch(0, 0)
        assert sm.metrics.blocks_fetched == 1
