"""Tracing subsystem tests: spans, Chrome-trace export, engine metrics."""

import json

import pytest

from repro.engine import Context
from repro.engine.tracing import (
    EngineMetrics,
    Tracer,
    chrome_trace_document,
    collect_engine_metrics,
    export_chrome_trace,
    export_text_trace,
)


class TestTracer:
    def test_span_contextmanager_measures(self):
        tracer = Tracer(label="t")
        with tracer.span("outer", "driver", answer=42):
            with tracer.span("inner", "driver"):
                pass
        assert len(tracer) == 2
        outer = next(s for s in tracer.spans_in("driver") if s.name == "outer")
        inner = next(s for s in tracer.spans_in("driver") if s.name == "inner")
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.args["answer"] == 42
        # containment: inner starts/ends within outer
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x", "driver"):
            pass
        tracer.add_span("y", "driver", 0.0, 1.0)
        tracer.instant("z", "driver")
        assert len(tracer) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.add_span("a", "driver", 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", "driver"):
                raise ValueError("x")
        assert len(tracer) == 1


class TestEngineSpans:
    def test_job_stage_task_hierarchy(self, ctx):
        rdd = ctx.parallelize(range(100), 4).map(lambda x: (x % 5, 1)).reduce_by_key(
            lambda a, b: a + b
        )
        assert rdd.count() == 5
        cats = ctx.tracer.categories()
        assert {"job", "stage", "task"} <= cats
        jobs = ctx.tracer.spans_in("job")
        stages = ctx.tracer.spans_in("stage")
        tasks = ctx.tracer.spans_in("task")
        assert len(jobs) == 1
        assert len(stages) == 2  # shuffle-map + result
        assert len(tasks) == 8  # 4 map + 4 reduce partitions
        job = jobs[0]
        for stage in stages:
            assert job.start_s <= stage.start_s
            assert stage.end_s <= job.end_s
        # shuffle spans carry byte counts
        shuffle = ctx.tracer.spans_in("shuffle")
        assert shuffle
        assert any(s.args.get("bytes", 0) > 0 for s in shuffle)

    def test_broadcast_and_cache_spans(self, ctx):
        bc = ctx.broadcast(list(range(50)))
        rdd = ctx.parallelize(range(20), 2).map(lambda x: x in bc.value).cache()
        rdd.collect()
        rdd.collect()
        publishes = ctx.tracer.spans_in("broadcast")
        assert any(s.name == f"broadcast_publish b{bc.id}" for s in publishes)
        assert any(s.args.get("size_bytes", 0) > 0 for s in publishes)
        assert ctx.tracer.spans_in("cache")

    def test_tracing_can_be_disabled(self):
        with Context(backend="serial", tracing=False) as ctx:
            ctx.parallelize(range(10), 2).count()
            assert len(ctx.tracer) == 0


class TestChromeExport:
    def test_document_schema(self, ctx):
        ctx.parallelize(range(20), 2).map(lambda x: (x % 2, x)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        doc = chrome_trace_document([ctx.tracer])
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "X" in phases
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0
        # one process-name metadata record per tracer
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M" and e["name"] == "process_name"]
        assert len(meta) == 1

    def test_export_writes_loadable_json(self, ctx, tmp_path):
        ctx.parallelize(range(10), 2).count()
        path = tmp_path / "trace.json"
        export_chrome_trace([ctx.tracer], path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_none_tracers_filtered(self, tmp_path):
        tracer = Tracer(label="solo")
        tracer.add_span("a", "driver", 0.0, 0.5)
        path = tmp_path / "t.json"
        export_chrome_trace([tracer, None], path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_text_export(self, ctx, tmp_path):
        ctx.parallelize(range(10), 2).count()
        text = ctx.tracer.to_text()
        assert "job-0" in text
        path = tmp_path / "t.txt"
        export_text_trace(ctx.tracer, path)
        assert "job-0" in path.read_text()


class TestEngineMetrics:
    def test_collect_after_shuffled_cached_job(self, ctx):
        rdd = ctx.parallelize(range(100), 4).cache()
        rdd.count()
        rdd.map(lambda x: (x % 3, 1)).reduce_by_key(lambda a, b: a + b).collect()
        m = collect_engine_metrics(ctx)
        assert m.n_jobs == 2
        assert m.n_tasks >= 8
        assert m.total_task_seconds > 0
        assert m.shuffle_bytes_written > 0
        assert m.shuffle_bytes_fetched > 0
        assert m.cache_memory_hits > 0  # second job reads the cached blocks
        assert 0.0 < m.cache_hit_rate <= 1.0
        assert "jobs=2" in m.summary()

    def test_hit_rate_zero_without_cache_traffic(self):
        m = EngineMetrics()
        assert m.cache_hit_rate == 0.0
