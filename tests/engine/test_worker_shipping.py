"""Zero-redundancy task shipping: worker block store, broadcast dedup,
task batching, stable worker ids, and serve-layer composition.

The process backend ships each task as a small closure blob plus block
*references*; persistent workers resolve references against a local LRU
store and pull a missing block from the driver at most once.  These tests
pin the economics (one broadcast shipment per worker, not per task) and
the fallback paths (LRU eviction -> re-pull, worker crash -> respawn).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import Context
from repro.engine.workerstore import (
    _MISS,
    WorkerBlockStore,
    broadcast_key,
    rdd_block_key,
)


@pytest.fixture()
def pctx():
    with Context(backend="processes", parallelism=2) as c:
        yield c


class TestWorkerBlockStore:
    def test_put_get(self):
        store = WorkerBlockStore(budget_bytes=1000)
        store.put(("bc", 1), [1, 2, 3], 100)
        assert store.get(("bc", 1)) == [1, 2, 3]
        assert store.total_bytes == 100

    def test_miss_is_sentinel_not_none(self):
        store = WorkerBlockStore(budget_bytes=1000)
        store.put(("bc", 1), None, 10)  # None is a legal block value
        assert store.get(("bc", 1)) is None
        assert store.get(("bc", 2)) is _MISS

    def test_lru_eviction_order(self):
        store = WorkerBlockStore(budget_bytes=250)
        store.put(("bc", 1), "a", 100)
        store.put(("bc", 2), "b", 100)
        store.get(("bc", 1))  # touch 1 -> 2 becomes LRU
        store.put(("bc", 3), "c", 100)  # over budget: evicts 2
        assert store.get(("bc", 2)) is _MISS
        assert store.get(("bc", 1)) == "a"
        assert store.get(("bc", 3)) == "c"
        assert store.evictions == 1
        assert store.total_bytes == 200

    def test_keeps_at_least_one_block(self):
        store = WorkerBlockStore(budget_bytes=10)
        store.put(("rdd", 1, 0), list(range(100)), 5000)
        # The just-inserted block survives even though it busts the budget.
        assert store.get(("rdd", 1, 0)) == list(range(100))

    def test_remove(self):
        store = WorkerBlockStore(budget_bytes=1000)
        store.put(("shuf", 1, 0), "x", 50)
        assert store.remove(("shuf", 1, 0))
        assert not store.remove(("shuf", 1, 0))
        assert store.get(("shuf", 1, 0)) is _MISS
        assert store.total_bytes == 0

    def test_key_helpers(self):
        assert broadcast_key(7) == ("bc", 7)
        assert rdd_block_key(3, 1) == ("rdd", 3, 1)


class TestBroadcastOncePerWorker:
    def test_broadcast_ships_once_per_worker_not_per_task(self, pctx):
        payload = {i: "x" * 50 for i in range(200)}
        bc = pctx.broadcast(payload)
        rdd = pctx.parallelize(range(12), 6).map(lambda x, b=bc: (x, len(b.value)))
        assert rdd.collect() == [(i, 200) for i in range(12)]

        m = pctx.executor.shipping_metrics
        # 6 tasks referenced the broadcast but only 2 workers exist: the
        # payload crossed the IPC channel exactly once per worker.
        assert m.broadcast_unique_blocks == 1
        assert m.broadcast_blocks_shipped == 2
        assert m.broadcast_bytes_shipped == 2 * bc.shipping_size_bytes()
        assert m.dedup_hits >= 4  # the other 4 task references were free
        # The broadcast manager's per-worker ledger agrees.
        assert pctx.broadcast_manager.transfers == 2

    def test_second_job_ships_nothing(self, pctx):
        bc = pctx.broadcast(list(range(1000)))
        rdd = pctx.parallelize(range(8), 4).map(lambda x, b=bc: b.value[x])
        rdd.collect()
        m = pctx.executor.shipping_metrics
        shipped_after_first = m.broadcast_bytes_shipped
        assert shipped_after_first > 0
        rdd.collect()  # same broadcast, warm worker caches
        assert m.broadcast_bytes_shipped == shipped_after_first

    def test_destroy_invalidates_worker_caches(self, pctx):
        bc = pctx.broadcast([1, 2, 3])
        pctx.parallelize(range(4), 4).map(lambda x, b=bc: b.value[0]).collect()
        m = pctx.executor.shipping_metrics
        first = m.broadcast_bytes_shipped
        bc.destroy()
        bc2 = pctx.broadcast([4, 5, 6])
        got = pctx.parallelize(range(4), 4).map(lambda x, b=bc2: b.value[0]).collect()
        assert got == [4, 4, 4, 4]
        assert m.broadcast_bytes_shipped > first  # new payload really shipped


class TestWorkerStoreEvictionRepull:
    def test_evicted_block_is_pulled_again(self):
        # A 1-byte budget keeps only the most recent block: pushing B
        # evicts A, so reusing A forces the miss->pull path (the driver
        # still believes the worker holds A and does not re-push it).
        with Context(backend="processes", parallelism=1, worker_store_bytes=1) as ctx:
            bc_a = ctx.broadcast("a" * 2000)
            bc_b = ctx.broadcast("b" * 2000)
            ctx.parallelize([0], 1).map(lambda x, b=bc_a: len(b.value)).collect()
            ctx.parallelize([0], 1).map(lambda x, b=bc_b: len(b.value)).collect()
            got = ctx.parallelize([0], 1).map(lambda x, b=bc_a: len(b.value)).collect()
            assert got == [2000]
            m = ctx.executor.shipping_metrics
            assert m.worker_store_evictions >= 1
            assert m.blocks_pulled >= 1
            assert m.block_bytes_pulled > 0


class TestTaskBatching:
    def test_more_partitions_than_workers_matches_serial(self, pctx):
        data = [(i % 5, i) for i in range(70)]
        with Context(backend="serial") as sctx:
            expect = (
                sctx.parallelize(data, 7)
                .reduce_by_key(lambda a, b: a + b)
                .collect_as_map()
            )
        got = (
            pctx.parallelize(data, 7)
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert got == expect
        # 7 map tasks round-robin onto 2 workers as at most 2 batches/stage.
        m = pctx.executor.shipping_metrics
        assert m.batches >= 2

    def test_worker_crash_mid_batch_respawns_and_retries(self, pctx, tmp_path):
        marker = str(tmp_path / "crashed-once")

        def boom(x, marker=marker):
            if x == 3 and not os.path.exists(marker):
                open(marker, "w").close()
                os._exit(1)  # kill the worker process, not just the task
            return x * 10

        got = sorted(pctx.parallelize(range(6), 3).map(boom).collect())
        assert got == [0, 10, 20, 30, 40, 50]

    def test_cached_rdd_reused_from_driver_blocks(self, pctx):
        rdd = pctx.parallelize(range(20), 4).map(lambda x: x * 2).cache()
        assert rdd.sum() == 380
        m = pctx.executor.shipping_metrics
        pushed_after_first = m.blocks_pushed
        assert rdd.sum() == 380  # cached partitions resolve as references
        assert m.blocks_pushed == pushed_after_first  # worker store had them


class TestStableWorkerIds:
    def test_thread_worker_id_reflects_executing_thread(self):
        from repro.engine.task import current_task_context

        def tag(tc, it):
            data = list(it)
            if data and data[0] == 0:
                time.sleep(0.8)  # pin one thread on partition 0
            return (current_task_context().worker_id, data and data[0])

        with Context(backend="threads", parallelism=2) as ctx:
            rdd = ctx.parallelize(range(6), 6)
            out = ctx.run_job(rdd, tag)
        ids = {wid for wid, _first in out}
        assert ids <= {"worker-0", "worker-1"}
        # While partition 0 blocks one thread, the other thread drains the
        # remaining 5 tasks — they must all report the SAME worker id (the
        # old submission-index scheme would alternate ids regardless of
        # which thread actually ran the task).
        fast_ids = {wid for wid, first in out if first != 0}
        assert len(fast_ids) == 1
        assert {wid for wid, first in out if first == 0} != fast_ids

    def test_process_worker_ids_are_stable_slots(self, pctx):
        from repro.engine.task import current_task_context

        out = pctx.run_job(
            pctx.parallelize(range(8), 8),
            lambda tc, it: current_task_context().worker_id,
        )
        assert set(out) == {"worker-0", "worker-1"}
        # Round-robin batching: even partitions on slot 0, odd on slot 1.
        assert out[0::2] == ["worker-0"] * 4
        assert out[1::2] == ["worker-1"] * 4


class TestBlockInvalidation:
    """Released shuffle outputs and uncached RDDs must leave the executor's
    driver registry and the worker stores — iterative miners call
    clear_shuffle_outputs between passes precisely to bound driver memory,
    so the executor must not retain each iteration's payloads."""

    def test_clear_shuffle_outputs_releases_executor_blocks(self, pctx):
        data = [(i % 4, i) for i in range(40)]
        for _ in range(3):  # iterative-miner shape: shuffle, then release
            got = (
                pctx.parallelize(data, 4)
                .reduce_by_key(lambda a, b: a + b)
                .collect_as_map()
            )
            assert len(got) == 4
            assert any(k[0] == "shuf" for k in pctx.executor._driver_blocks)
            pctx.clear_shuffle_outputs()
            assert not any(k[0] == "shuf" for k in pctx.executor._driver_blocks)
            assert not any(k[0] == "shuf" for k in pctx.executor._blob_cache)
            for handle in pctx.executor._handles:
                assert not any(k[0] == "shuf" for k in handle.known)

    def test_unpersist_releases_executor_blocks(self, pctx):
        rdd = pctx.parallelize(range(20), 4).map(lambda x: x * 2).cache()
        assert rdd.sum() == 380
        assert rdd.sum() == 380  # second pass offers cached partitions by ref
        assert any(k[0] == "rdd" for k in pctx.executor._driver_blocks)
        rdd.unpersist()
        assert not any(k[0] == "rdd" for k in pctx.executor._driver_blocks)
        assert not any(k[0] == "rdd" for k in pctx.executor._blob_cache)
        for handle in pctx.executor._handles:
            assert not any(k[0] == "rdd" for k in handle.known)
        assert rdd.sum() == 380  # recompute path still works after the drops

    def test_invalidate_prefix_is_selective(self):
        from repro.engine.executors import ProcessExecutor

        ex = ProcessExecutor(1)
        try:
            ex.offer_block(("shuf", 1, 0), [1])
            ex.offer_block(("shuf", 2, 0), [2])
            ex.offer_block(("rdd", 1, 0), [3])
            ex.invalidate_prefix(("shuf", 1))
            assert set(ex._driver_blocks) == {("shuf", 2, 0), ("rdd", 1, 0)}
            ex.invalidate_prefix(("shuf",))
            assert set(ex._driver_blocks) == {("rdd", 1, 0)}
        finally:
            ex.shutdown()


class TestStartMethod:
    def test_spawn_when_other_threads_alive(self):
        # Forking a multi-threaded process can deadlock the child on locks
        # held by other threads at fork time (the repro.serve HTTP server
        # is exactly that shape), so the pool must choose spawn.
        import threading

        release = threading.Event()
        t = threading.Thread(target=release.wait, daemon=True)
        t.start()
        try:
            with Context(backend="processes", parallelism=1) as ctx:
                got = ctx.parallelize([1, 2, 3], 1).map(lambda x: x + 1).collect()
                assert got == [2, 3, 4]
                assert ctx.executor._mpctx.get_start_method() == "spawn"
        finally:
            release.set()
            t.join()


class TestServeComposition:
    def test_service_with_process_backend_and_context_reuse(self):
        from repro.core.api import mine_frequent_itemsets
        from repro.core.registry import MiningConfig
        from repro.serve import MiningService

        from repro.datasets import mushroom_like

        ds = mushroom_like(scale=0.03, seed=3)
        cfg_a = MiningConfig(min_support=0.4, backend="processes", parallelism=2)
        cfg_b = MiningConfig(min_support=0.5, backend="processes", parallelism=2)
        direct_a = mine_frequent_itemsets(ds.transactions, config=cfg_a)
        direct_b = mine_frequent_itemsets(ds.transactions, config=cfg_b)

        with MiningService(n_workers=1) as service:
            # Two jobs through ONE warm context: the second exercises
            # renew_run on a live stateful worker pool.
            job_a = service.submit(ds.transactions, cfg_a)
            assert service.wait(job_a.job_id, timeout=120).state.value == "done"
            job_b = service.submit(ds.transactions, cfg_b)
            assert service.wait(job_b.job_id, timeout=120).state.value == "done"
            assert job_a.result.itemsets == direct_a.itemsets
            assert job_b.result.itemsets == direct_b.itemsets
