"""Unit tests for the mini-DFS: namespace, blocks, replication, faults."""

import pytest

from repro.common.errors import (
    BlockUnavailableError,
    FileAlreadyExists,
    FileNotFoundInDfs,
    HdfsError,
)
from repro.hdfs import MiniDfs, normalize_path


@pytest.fixture()
def dfs(tmp_path):
    with MiniDfs(root_dir=str(tmp_path), n_datanodes=3, block_size=64, replication=2) as d:
        yield d


class TestNamespace:
    def test_write_read_roundtrip(self, dfs):
        dfs.write_text("/data/a.txt", "hello world")
        assert dfs.read_text("/data/a.txt") == "hello world"

    def test_write_lines_read_lines(self, dfs):
        dfs.write_lines("/x", ["1 2 3", "4 5"])
        assert dfs.read_lines("/x") == ["1 2 3", "4 5"]

    def test_exists(self, dfs):
        assert not dfs.exists("/nope")
        dfs.write_text("/yes", "1")
        assert dfs.exists("/yes")

    def test_duplicate_create_raises(self, dfs):
        dfs.write_text("/a", "x")
        with pytest.raises(FileAlreadyExists):
            dfs.write_text("/a", "y")

    def test_missing_read_raises(self, dfs):
        with pytest.raises(FileNotFoundInDfs):
            dfs.read_text("/missing")

    def test_delete_removes_blocks(self, dfs):
        dfs.write_text("/a", "x" * 300)
        dfs.delete("/a")
        assert not dfs.exists("/a")
        with pytest.raises(FileNotFoundInDfs):
            dfs.read_text("/a")

    def test_list_files_prefix(self, dfs):
        dfs.write_text("/out/part-0", "a")
        dfs.write_text("/out/part-1", "b")
        dfs.write_text("/in/x", "c")
        assert dfs.list_files("/out") == ["/out/part-0", "/out/part-1"]

    def test_relative_path_rejected(self, dfs):
        with pytest.raises(HdfsError):
            dfs.write_text("relative", "x")

    def test_normalize_path(self):
        assert normalize_path("//a///b/") == "/a/b"


class TestBlocks:
    def test_large_file_spans_blocks(self, dfs):
        payload = "A" * 200  # block_size=64 -> 4 blocks
        dfs.write_text("/big", payload)
        blocks = dfs.block_locations("/big")
        assert len(blocks) == 4
        assert [b.length for b in blocks] == [64, 64, 64, 8]
        assert dfs.read_text("/big") == payload

    def test_empty_file_allowed(self, dfs):
        dfs.write_text("/empty", "")
        assert dfs.read_text("/empty") == ""
        assert dfs.file_length("/empty") == 0

    def test_replication_factor(self, dfs):
        dfs.write_text("/r", "data")
        for b in dfs.block_locations("/r"):
            assert len(b.replicas) == 2
            assert len(set(b.replicas)) == 2

    def test_replication_capped_at_nodes(self, tmp_path):
        with MiniDfs(root_dir=str(tmp_path / "d"), n_datanodes=1, replication=3) as d:
            d.write_text("/a", "x")
            assert len(d.block_locations("/a")[0].replicas) == 1

    def test_block_range_read(self, dfs):
        payload = "".join(chr(ord("a") + i % 26) for i in range(200))
        dfs.write_text("/rng", payload)
        assert dfs.read_block_range("/rng", 60, 10).decode() == payload[60:70]
        assert dfs.read_block_range("/rng", 0, 200).decode() == payload

    def test_file_length(self, dfs):
        dfs.write_text("/len", "abcdef")
        assert dfs.file_length("/len") == 6


class TestFaults:
    def test_read_survives_one_replica_loss(self, dfs):
        dfs.write_text("/f", "important" * 30)
        victim = dfs.block_locations("/f")[0].replicas[0]
        dfs.fail_datanode(victim)
        assert "important" in dfs.read_text("/f")

    def test_read_fails_when_all_replicas_down(self, dfs):
        dfs.write_text("/f", "x")
        for node in dfs.block_locations("/f")[0].replicas:
            dfs.fail_datanode(node)
        with pytest.raises(BlockUnavailableError):
            dfs.read_text("/f")

    def test_recovery_restores_access(self, dfs):
        dfs.write_text("/f", "x")
        nodes = dfs.block_locations("/f")[0].replicas
        for node in nodes:
            dfs.fail_datanode(node)
        dfs.recover_datanode(nodes[0])
        assert dfs.read_text("/f") == "x"


class TestMetrics:
    def test_write_counts_replicated_bytes(self, dfs):
        dfs.write_text("/m", "12345678")  # 8 bytes * replication 2
        assert dfs.metrics.bytes_written == 16
        assert dfs.metrics.files_created == 1

    def test_read_counts_bytes_once(self, dfs):
        dfs.write_text("/m", "12345678")
        before = dfs.metrics.bytes_read
        dfs.read_text("/m")
        assert dfs.metrics.bytes_read - before == 8

    def test_snapshot_delta(self, dfs):
        snap = dfs.metrics.snapshot()
        dfs.write_text("/m", "abcd")
        d = dfs.metrics.delta(snap)
        assert d.files_created == 1
        assert d.bytes_written == 8  # 4 bytes x 2 replicas
