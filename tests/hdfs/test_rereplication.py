"""Namenode re-replication tests."""

import pytest

from repro.common.errors import BlockUnavailableError
from repro.hdfs import MiniDfs


@pytest.fixture()
def dfs(tmp_path):
    with MiniDfs(root_dir=str(tmp_path), n_datanodes=4, block_size=64, replication=2) as d:
        yield d


class TestUnderReplicated:
    def test_healthy_cluster_reports_nothing(self, dfs):
        dfs.write_text("/a", "x" * 200)
        assert dfs.under_replicated_blocks() == []

    def test_failure_surfaces_damaged_blocks(self, dfs):
        dfs.write_text("/a", "x" * 200)
        victim = dfs.block_locations("/a")[0].replicas[0]
        dfs.fail_datanode(victim)
        damaged = dfs.under_replicated_blocks()
        assert damaged
        assert all(victim in info.replicas for _p, info in damaged)

    def test_lost_blocks_not_listed(self, dfs):
        dfs.write_text("/a", "x")
        for node in dfs.block_locations("/a")[0].replicas:
            dfs.fail_datanode(node)
        assert dfs.under_replicated_blocks() == []  # unrecoverable, not under-replicated


class TestRereplicate:
    def test_restores_replication_factor(self, dfs):
        dfs.write_text("/a", "payload " * 40)
        victim = dfs.block_locations("/a")[0].replicas[0]
        dfs.fail_datanode(victim)
        created = dfs.rereplicate()
        assert created >= 1
        assert dfs.under_replicated_blocks() == []
        for info in dfs.block_locations("/a"):
            assert len(info.replicas) == 2
            assert victim not in info.replicas

    def test_data_survives_second_failure_after_repair(self, dfs):
        dfs.write_text("/a", "important" * 20)
        first = dfs.block_locations("/a")[0].replicas[0]
        dfs.fail_datanode(first)
        dfs.rereplicate()
        # now the OTHER original replica fails too; repaired copy saves us
        second = next(
            r for r in dfs.block_locations("/a")[0].replicas if r != first
        )
        dfs.fail_datanode(second)
        assert "important" in dfs.read_text("/a")

    def test_without_repair_second_failure_loses_data(self, dfs):
        dfs.write_text("/a", "fragile")
        replicas = list(dfs.block_locations("/a")[0].replicas)
        for node in replicas:
            dfs.fail_datanode(node)
        with pytest.raises(BlockUnavailableError):
            dfs.read_text("/a")

    def test_idempotent(self, dfs):
        dfs.write_text("/a", "x" * 100)
        dfs.fail_datanode(dfs.block_locations("/a")[0].replicas[0])
        assert dfs.rereplicate() >= 1
        assert dfs.rereplicate() == 0

    def test_degrades_when_too_few_live_nodes(self, tmp_path):
        with MiniDfs(root_dir=str(tmp_path / "x"), n_datanodes=2, replication=2) as d:
            d.write_text("/a", "x")
            victim = d.block_locations("/a")[0].replicas[0]
            d.fail_datanode(victim)
            # only one live node left: replication target degrades to 1
            assert d.rereplicate() == 0
            assert d.read_text("/a") == "x"

    def test_accounts_io_metrics(self, dfs):
        dfs.write_text("/a", "z" * 100)
        before = dfs.metrics.bytes_written
        dfs.fail_datanode(dfs.block_locations("/a")[0].replicas[0])
        dfs.rereplicate()
        assert dfs.metrics.bytes_written > before
