"""Tests for line-aligned input splits (TextInputFormat semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs import MiniDfs, compute_splits, read_all_lines_via_splits, read_split_lines


def make_dfs(tmp_path, block_size):
    return MiniDfs(root_dir=str(tmp_path), n_datanodes=3, block_size=block_size, replication=1)


class TestSplits:
    def test_one_split_per_block(self, tmp_path):
        with make_dfs(tmp_path, 32) as dfs:
            dfs.write_text("/f", "x" * 100)
            splits = compute_splits(dfs, "/f")
            assert len(splits) == 4
            assert [s.start for s in splits] == [0, 32, 64, 96]

    def test_split_carries_hosts(self, tmp_path):
        with make_dfs(tmp_path, 32) as dfs:
            dfs.write_text("/f", "x" * 40)
            for s in compute_splits(dfs, "/f"):
                assert len(s.hosts) == 1

    def test_lines_partitioned_exactly_once(self, tmp_path):
        lines = [f"line-{i}-{'p' * (i % 7)}" for i in range(50)]
        with make_dfs(tmp_path, 37) as dfs:  # awkward block size -> mid-line cuts
            dfs.write_lines("/f", lines)
            assert read_all_lines_via_splits(dfs, "/f") == lines

    def test_single_line_spanning_many_blocks(self, tmp_path):
        long_line = "z" * 300
        with make_dfs(tmp_path, 64) as dfs:
            dfs.write_lines("/f", [long_line, "tail"])
            got = read_all_lines_via_splits(dfs, "/f")
            assert got == [long_line, "tail"]

    def test_interior_split_owning_no_line_start_is_empty(self, tmp_path):
        # One very long first line means blocks 1..n-1 own no line starts.
        with make_dfs(tmp_path, 16) as dfs:
            dfs.write_lines("/f", ["a" * 100])
            splits = compute_splits(dfs, "/f")
            non_empty = [s for s in splits if read_split_lines(dfs, s)]
            assert len(non_empty) == 1
            assert read_split_lines(dfs, non_empty[0]) == ["a" * 100]

    def test_file_without_trailing_newline(self, tmp_path):
        with make_dfs(tmp_path, 8) as dfs:
            dfs.write_text("/f", "ab\ncdef\nghi")
            assert read_all_lines_via_splits(dfs, "/f") == ["ab", "cdef", "ghi"]

    def test_empty_file_yields_no_splits(self, tmp_path):
        with make_dfs(tmp_path, 8) as dfs:
            dfs.write_text("/f", "")
            assert compute_splits(dfs, "/f") == []

    @settings(max_examples=30, deadline=None)
    @given(
        lines=st.lists(st.text(alphabet="abc XYZ09", max_size=25), max_size=40),
        block_size=st.integers(4, 50),
    )
    def test_property_reassembly(self, tmp_path_factory, lines, block_size):
        tmp = tmp_path_factory.mktemp("dfs")
        with make_dfs(tmp, block_size) as dfs:
            dfs.write_lines("/f", lines)
            got = read_all_lines_via_splits(dfs, "/f")
            assert got == lines


@pytest.fixture(scope="session")
def tmp_path_factory_alias(tmp_path_factory):
    return tmp_path_factory
