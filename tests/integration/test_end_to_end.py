"""End-to-end integration: generators -> both runtimes -> identical results.

These are the paper's correctness claims run across the whole stack: every
algorithm implementation (sequential oracles, YAFIM on each executor
backend, MRApriori and its variants) must produce byte-identical frequent
itemsets on every dataset family.
"""

import pytest

from repro.algorithms import apriori, eclat, fpgrowth
from repro.bench.harness import run_comparison
from repro.core import DPC, FPC, SPC, Yafim, generate_rules
from repro.datasets import (
    chess_like,
    medical_cases,
    mushroom_like,
    pumsb_star_like,
    quest_generator,
)
from repro.engine import Context
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner

# Small-but-structured instances of each dataset family.
DATASETS = {
    "mushroom": (lambda: mushroom_like(scale=0.03, seed=11), 0.35),
    "chess": (lambda: chess_like(scale=0.07, seed=11), 0.85),
    "pumsb_star": (lambda: pumsb_star_like(scale=0.006, seed=11), 0.65),
    "quest": (lambda: quest_generator(n_transactions=400, n_items=60, seed=11), 0.03),
    "medical": (lambda: medical_cases(n_cases=300, seed=11), 0.05),
}


@pytest.mark.parametrize("name", sorted(DATASETS))
class TestAllMinersAgree:
    def test_oracles_and_yafim(self, name):
        make, sup = DATASETS[name]
        ds = make()
        want = apriori(ds.transactions, sup)
        assert eclat(ds.transactions, sup) == want
        assert fpgrowth(ds.transactions, sup) == want
        with Context(backend="serial") as ctx:
            got = Yafim(ctx).run(ds.transactions, sup)
        assert got.itemsets == want

    def test_mr_family_on_dfs(self, name, tmp_path):
        make, sup = DATASETS[name]
        ds = make()
        want = apriori([[str(i) for i in t] for t in ds.transactions], sup)
        with MiniDfs(
            root_dir=str(tmp_path), n_datanodes=3, block_size=8 * 1024, replication=2
        ) as dfs:
            ds.write_to_dfs(dfs, "/t.txt")
            for cls, kwargs in ((SPC, {}), (FPC, {"passes": 2}), (DPC, {})):
                got = cls(JobRunner(dfs), **kwargs).run("/t.txt", sup)
                assert got.itemsets == want, cls.__name__


class TestCrossBackendYafim:
    @pytest.mark.parametrize("backend,par", [("threads", 4), ("processes", 2)])
    def test_backends_match_serial(self, backend, par):
        ds = medical_cases(n_cases=300, seed=11)
        with Context(backend="serial") as ctx:
            want = Yafim(ctx).run(ds.transactions, 0.05).itemsets
        with Context(backend=backend, parallelism=par) as ctx:
            got = Yafim(ctx).run(ds.transactions, 0.05).itemsets
        assert got == want

    def test_text_file_and_memory_agree(self, tmp_path):
        ds = mushroom_like(scale=0.03, seed=11)
        with Context(backend="serial") as ctx:
            mem = Yafim(ctx).run(ds.transactions, 0.4).itemsets
        with MiniDfs(root_dir=str(tmp_path), n_datanodes=2, block_size=4096) as dfs:
            ds.write_to_dfs(dfs, "/t.txt")
            with Context(backend="serial") as ctx:
                file_based = Yafim(ctx).run_text_file(dfs, "/t.txt", 0.4).itemsets
        as_str = {tuple(str(i) for i in k): v for k, v in mem.items()}
        assert {tuple(sorted(k)): v for k, v in file_based.items()} == {
            tuple(sorted(k)): v for k, v in as_str.items()
        }


class TestFaultToleranceEndToEnd:
    def test_yafim_survives_task_failures(self):
        ds = medical_cases(n_cases=200, seed=11)
        with Context(backend="serial") as ctx:
            want = Yafim(ctx).run(ds.transactions, 0.08).itemsets
        with Context(backend="serial") as ctx:
            ctx.fault_injector.fail_task(stage_kind="shuffle_map", times=3)
            ctx.fault_injector.fail_task(stage_kind="result", times=2)
            got = Yafim(ctx).run(ds.transactions, 0.08).itemsets
            assert ctx.fault_injector.injected == 5
        assert got == want

    def test_yafim_survives_cache_loss_mid_run(self):
        """Drop every cached block between iterations — lineage recovery
        must recompute them without changing the result."""
        from repro.engine.storage import BlockId

        ds = medical_cases(n_cases=200, seed=11)
        with Context(backend="serial") as ctx:
            want = Yafim(ctx).run(ds.transactions, 0.08).itemsets

        class DroppingYafim(Yafim):
            def _build_matcher(self, candidates):
                # called once per phase-II iteration: sabotage the cache
                for block in list(ctx2.block_manager._mem):
                    ctx2.block_manager.drop_block(BlockId(block.rdd_id, block.partition))
                return super()._build_matcher(candidates)

        with Context(backend="serial") as ctx2:
            got = DroppingYafim(ctx2).run(ds.transactions, 0.08).itemsets
        assert got == want

    def test_mr_survives_datanode_failure(self, tmp_path):
        ds = medical_cases(n_cases=200, seed=11)
        with MiniDfs(
            root_dir=str(tmp_path), n_datanodes=3, block_size=4096, replication=2
        ) as dfs:
            ds.write_to_dfs(dfs, "/t.txt")
            want = SPC(JobRunner(dfs)).run("/t.txt", 0.08).itemsets
            dfs.fail_datanode("dn0")  # replication=2 keeps every block alive
            got = SPC(JobRunner(dfs)).run("/t.txt", 0.08).itemsets
        assert got == want


class TestDownstreamPipeline:
    def test_mine_then_rules(self):
        ds = medical_cases(n_cases=500, seed=3)
        run = run_comparison(ds, 0.05, num_partitions=4)
        rules = generate_rules(
            run.yafim.itemsets, run.yafim.n_transactions, min_confidence=0.8
        )
        assert rules, "expected high-confidence co-prescription rules"
        # every rule's itemset must be genuinely frequent
        for rule in rules[:50]:
            whole = tuple(sorted(rule.antecedent + rule.consequent))
            assert run.yafim.support(whole) >= 0.05 - 1e-9

    def test_replays_deterministic(self):
        from repro.bench.harness import replay_mr, replay_yafim
        from repro.cluster import PAPER_CLUSTER

        ds = medical_cases(n_cases=200, seed=11)
        run = run_comparison(ds, 0.08, num_partitions=2)
        assert replay_yafim(run.yafim, PAPER_CLUSTER) == replay_yafim(
            run.yafim, PAPER_CLUSTER
        )
        assert replay_mr(run.mrapriori, PAPER_CLUSTER) == replay_mr(
            run.mrapriori, PAPER_CLUSTER
        )
