"""MapReduce runtime tests: wordcount, combiner, counters, chains, errors."""

from collections import Counter as PyCounter

import pytest

from repro.common.errors import JobConfigError, MapReduceError
from repro.hdfs import MiniDfs
from repro.mapreduce import (
    GROUP_TASK,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    FunctionMapper,
    FunctionReducer,
    JobChain,
    JobRunner,
    JobSpec,
    Mapper,
    Reducer,
    read_job_output,
)


@pytest.fixture()
def dfs(tmp_path):
    with MiniDfs(root_dir=str(tmp_path), n_datanodes=3, block_size=64, replication=1) as d:
        yield d


class WordCountMapper(Mapper):
    def map(self, key, value, emit):
        for word in value.split():
            emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, emit):
        emit(key, sum(values))


def wordcount_spec(output="/out", combiner=False, reducers=3):
    return JobSpec(
        name="wordcount",
        input_paths=["/in.txt"],
        output_path=output,
        mapper_factory=WordCountMapper,
        reducer_factory=SumReducer,
        combiner_factory=SumReducer if combiner else None,
        num_reducers=reducers,
    )


TEXT = ["the quick brown fox", "jumps over the lazy dog", "the fox again"] * 4


class TestWordCount:
    def expected(self):
        return dict(PyCounter(w for line in TEXT for w in line.split()))

    def parse(self, lines):
        out = {}
        for line in lines:
            k, v = line.split("\t")
            out[k] = int(v)
        return out

    def test_basic(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        runner = JobRunner(dfs)
        result = runner.run(wordcount_spec())
        got = self.parse(read_job_output(dfs, "/out"))
        assert got == self.expected()

    def test_with_combiner_same_answer(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        runner = JobRunner(dfs)
        result = runner.run(wordcount_spec(output="/out2", combiner=True))
        got = self.parse(read_job_output(dfs, "/out2"))
        assert got == self.expected()

    def test_threaded_backend_same_answer(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        runner = JobRunner(dfs, backend="threads", parallelism=3)
        runner.run(wordcount_spec(output="/out3"))
        assert self.parse(read_job_output(dfs, "/out3")) == self.expected()

    def test_one_part_file_per_reducer(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        JobRunner(dfs).run(wordcount_spec(reducers=4))
        assert len(dfs.list_files("/out")) == 4

    def test_counters(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        result = JobRunner(dfs).run(wordcount_spec())
        n_words = sum(len(line.split()) for line in TEXT)
        assert result.counters.value(GROUP_TASK, MAP_INPUT_RECORDS) == len(TEXT)
        assert result.counters.value(GROUP_TASK, MAP_OUTPUT_RECORDS) == n_words
        assert result.counters.value(GROUP_TASK, REDUCE_OUTPUT_RECORDS) == len(self.expected())

    def test_combiner_shrinks_shuffle(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        plain = JobRunner(dfs).run(wordcount_spec(output="/p"))
        combined = JobRunner(dfs).run(wordcount_spec(output="/c", combiner=True))
        assert combined.metrics.shuffle_bytes < plain.metrics.shuffle_bytes

    def test_metrics_measured(self, dfs):
        dfs.write_lines("/in.txt", TEXT)
        result = JobRunner(dfs).run(wordcount_spec())
        m = result.metrics
        assert len(m.map_task_durations) >= 1  # one per split
        assert len(m.reduce_task_durations) == 3
        assert m.hdfs_read_bytes > 0
        assert m.hdfs_write_bytes > 0
        assert m.wall_seconds > 0

    def test_multiple_inputs(self, dfs):
        dfs.write_lines("/a.txt", ["x y"])
        dfs.write_lines("/b.txt", ["y z"])
        spec = wordcount_spec()
        spec.input_paths = ["/a.txt", "/b.txt"]
        JobRunner(dfs).run(spec)
        assert self.parse(read_job_output(dfs, "/out")) == {"x": 1, "y": 2, "z": 1}


class TestJobValidation:
    def test_existing_output_rejected(self, dfs):
        dfs.write_lines("/in.txt", ["a"])
        dfs.write_lines("/out/part-r-00000", ["stale"])
        with pytest.raises(MapReduceError):
            JobRunner(dfs).run(wordcount_spec())

    def test_empty_input_rejected(self, dfs):
        dfs.write_text("/in.txt", "")
        with pytest.raises(MapReduceError):
            JobRunner(dfs).run(wordcount_spec())

    def test_no_input_paths(self, dfs):
        spec = wordcount_spec()
        spec.input_paths = []
        with pytest.raises(JobConfigError):
            spec.validate()

    def test_bad_reducer_count(self, dfs):
        spec = wordcount_spec(reducers=0)
        with pytest.raises(JobConfigError):
            spec.validate()

    def test_unknown_backend(self, dfs):
        with pytest.raises(MapReduceError):
            JobRunner(dfs, backend="gpu")


class TestDistributedCacheAndConfig:
    def test_cache_visible_in_setup(self, dfs):
        dfs.write_lines("/in.txt", ["a b"])
        seen = {}

        class CacheMapper(Mapper):
            def setup(self, config):
                seen["cache"] = config["__cache__"]["lookup"]
                seen["param"] = config["threshold"]

            def map(self, key, value, emit):
                emit("k", 1)

        spec = JobSpec(
            name="cache",
            input_paths=["/in.txt"],
            output_path="/out",
            mapper_factory=CacheMapper,
            reducer_factory=SumReducer,
            num_reducers=1,
            config={"threshold": 3},
            distributed_cache={"lookup": {"a", "b"}},
        )
        JobRunner(dfs).run(spec)
        assert seen == {"cache": {"a", "b"}, "param": 3}

    def test_function_adapters(self, dfs):
        dfs.write_lines("/in.txt", ["1 2", "3"])
        spec = JobSpec(
            name="fn",
            input_paths=["/in.txt"],
            output_path="/out",
            mapper_factory=lambda: FunctionMapper(
                lambda k, v: [(int(tok) % 2, int(tok)) for tok in v.split()]
            ),
            reducer_factory=lambda: FunctionReducer(lambda k, vs: [(k, sum(vs))]),
            num_reducers=2,
        )
        JobRunner(dfs).run(spec)
        got = dict(
            tuple(map(int, line.split("\t"))) for line in read_job_output(dfs, "/out")
        )
        assert got == {0: 2, 1: 4}


class TestJobChain:
    def test_iterative_chain_stops_on_none(self, dfs):
        # Job i counts words of the previous output; stop after 3 jobs.
        dfs.write_lines("/in.txt", ["a a b"])
        runner = JobRunner(dfs)
        chain = JobChain(runner)

        def next_job(iteration, previous):
            if iteration == 3:
                return None
            inp = ["/in.txt"] if previous is None else [  # read previous output
                p for p in dfs.list_files(previous.output_path)
            ]
            return JobSpec(
                name=f"job{iteration}",
                input_paths=inp,
                output_path=f"/iter{iteration}",
                mapper_factory=WordCountMapper,
                reducer_factory=SumReducer,
                num_reducers=1,
            )

        result = chain.run(next_job)
        assert len(result.results) == 3
        assert result.total_wall_seconds > 0
        # each iteration re-read from the DFS: per-job read bytes all > 0
        assert all(m.hdfs_read_bytes > 0 for m in result.per_job_metrics)

    def test_max_iterations_cap(self, dfs):
        dfs.write_lines("/in.txt", ["a"])
        runner = JobRunner(dfs)
        chain = JobChain(runner, max_iterations=2)

        def always(iteration, previous):
            return JobSpec(
                name=f"j{iteration}",
                input_paths=["/in.txt"],
                output_path=f"/o{iteration}",
                mapper_factory=WordCountMapper,
                reducer_factory=SumReducer,
                num_reducers=1,
            )

        assert len(chain.run(always).results) == 2
