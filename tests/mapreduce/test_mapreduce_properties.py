"""Property-based tests: the MapReduce runtime vs plain-Python semantics."""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdfs import MiniDfs
from repro.mapreduce import FunctionMapper, FunctionReducer, JobRunner, JobSpec, read_job_output

_settings = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

lines_strategy = st.lists(
    st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=6).map(" ".join),
    min_size=1,
    max_size=30,
)


def run_wordcount(lines, block_size, reducers, combiner):
    with MiniDfs(n_datanodes=3, block_size=block_size, replication=1) as dfs:
        dfs.write_lines("/in", lines)
        spec = JobSpec(
            name="wc",
            input_paths=["/in"],
            output_path="/out",
            mapper_factory=lambda: FunctionMapper(
                lambda k, v: [(w, 1) for w in v.split()]
            ),
            reducer_factory=lambda: FunctionReducer(lambda k, vs: [(k, sum(vs))]),
            combiner_factory=(
                (lambda: FunctionReducer(lambda k, vs: [(k, sum(vs))])) if combiner else None
            ),
            num_reducers=reducers,
        )
        JobRunner(dfs).run(spec)
        out = {}
        for line in read_job_output(dfs, "/out"):
            k, v = line.split("\t")
            out[k] = int(v)
        return out


class TestWordCountProperties:
    @_settings
    @given(lines_strategy, st.integers(4, 64), st.integers(1, 5), st.booleans())
    def test_matches_counter(self, lines, block_size, reducers, combiner):
        want = dict(Counter(w for line in lines for w in line.split()))
        got = run_wordcount(lines, block_size, reducers, combiner)
        assert got == want

    @_settings
    @given(lines_strategy, st.integers(1, 4))
    def test_reducer_count_does_not_change_result(self, lines, r1):
        a = run_wordcount(lines, 32, r1, combiner=False)
        b = run_wordcount(lines, 32, r1 + 3, combiner=True)
        assert a == b

    @_settings
    @given(lines_strategy)
    def test_block_size_does_not_change_result(self, lines):
        a = run_wordcount(lines, 5, 2, combiner=False)
        b = run_wordcount(lines, 4096, 2, combiner=False)
        assert a == b
