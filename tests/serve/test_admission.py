"""Admission control, fair-share scheduling, and latency histograms."""

import threading
import time

import pytest

from repro.core.registry import (
    MiningConfig,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.results import MiningRunResult
from repro.serve import (
    JobState,
    LatencyHistogram,
    MiningService,
    RejectedError,
    ServeError,
)

TXNS = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]]
CFG = MiningConfig(min_support=0.4, backend="serial")


def _result(txns, config, n=1) -> MiningRunResult:
    out = MiningRunResult(
        algorithm=config.algorithm,
        min_support=config.min_support,
        n_transactions=len(txns),
    )
    out.itemsets = {(1,): n}
    return out


def _cfg(algo, tag=None):
    options = {"tag": tag} if tag else {}
    return MiningConfig(min_support=0.4, algorithm=algo, options=options)


def wait_running(job, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while job.state is not JobState.RUNNING:
        assert time.monotonic() < deadline, f"job never ran: {job.state}"
        time.sleep(0.005)


@pytest.fixture
def gated_algo():
    release = threading.Event()

    def gated(txns, config):
        release.wait(15.0)
        return _result(txns, config)

    register_algorithm("adm_gate_algo", gated, overwrite=True)
    yield "adm_gate_algo", release
    release.set()
    unregister_algorithm("adm_gate_algo")


@pytest.fixture
def recorder_algo():
    order = []

    def recorder(txns, config):
        order.append(config.options.get("tag"))
        return _result(txns, config)

    register_algorithm("adm_rec_algo", recorder, overwrite=True)
    yield "adm_rec_algo", order
    unregister_algorithm("adm_rec_algo")


class TestAdmissionControl:
    def test_full_queue_rejects_with_retry_hint(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1, queue_limit=1) as svc:
            wait_running(svc.submit(TXNS, _cfg(algo)))
            svc.submit(TXNS, _cfg(algo, "fills-the-slot"))
            with pytest.raises(RejectedError) as exc:
                svc.submit(TXNS, _cfg(algo, "one-too-many"))
            err = exc.value
            assert err.retry_after_s > 0
            assert err.scope == "shard"
            assert err.queue_depth == 1 and err.queue_limit == 1
            assert err.payload()["rejected"] is True
            assert svc.metrics()["jobs_rejected"] == 1
            release.set()

    def test_unbounded_by_default(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1) as svc:
            wait_running(svc.submit(TXNS, _cfg(algo)))
            for i in range(50):
                svc.submit(TXNS, _cfg(algo, f"q{i}"))
            assert svc.queue_depth() == 50
            release.set()

    def test_rejected_job_leaves_no_ghost_inflight(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1, queue_limit=1) as svc:
            wait_running(svc.submit(TXNS, _cfg(algo)))
            fill = svc.submit(TXNS, _cfg(algo, "fill"))
            rejected_cfg = _cfg(algo, "rejected")
            with pytest.raises(RejectedError):
                svc.submit(TXNS, rejected_cfg)
            release.set()
            svc.wait(fill.job_id, 30)  # queue drained
            # the rejected key must not have an inflight primary to coalesce
            # onto — resubmitting it runs fresh
            retry = svc.submit(TXNS, rejected_cfg)
            assert retry.via == "run"
            assert svc.wait(retry.job_id, 30).state is JobState.DONE

    def test_memoized_hit_bypasses_admission(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1, queue_limit=1) as svc:
            done = svc.submit(TXNS, CFG)
            svc.wait(done.job_id, 30)
            wait_running(svc.submit(TXNS, _cfg(algo)))
            svc.submit(TXNS, _cfg(algo, "fill"))
            # queue is full, but this needs no queue slot
            hit = svc.submit(TXNS, CFG)
            assert hit.via == "memoized" and hit.state is JobState.DONE
            release.set()

    def test_coalesced_follower_bypasses_admission(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1, queue_limit=1) as svc:
            primary = svc.submit(TXNS, _cfg(algo))
            wait_running(primary)
            svc.submit(TXNS, _cfg(algo, "fill"))
            follower = svc.submit(TXNS, _cfg(algo))  # identical to primary
            assert follower.via == "coalesced"
            assert follower.coalesced_with == primary.job_id
            release.set()
            assert svc.wait(follower.job_id, 30).state is JobState.DONE

    def test_promoted_follower_bypasses_admission(self, gated_algo):
        algo, release = gated_algo
        with MiningService(n_workers=1, queue_limit=1) as svc:
            primary = svc.submit(TXNS, _cfg(algo))
            wait_running(primary)
            follower = svc.submit(TXNS, _cfg(algo))
            assert follower.via == "coalesced"
            filler = svc.submit(TXNS, _cfg(algo, "fill"))  # queue now full
            # cancelling the primary promotes the follower; the promotion
            # inherits the primary's capacity instead of being re-admitted
            svc.cancel(primary.job_id)
            release.set()
            assert svc.wait(follower.job_id, 30).state is JobState.DONE
            assert svc.wait(filler.job_id, 30).state is JobState.DONE

    def test_queue_limit_validation(self):
        with pytest.raises(ServeError, match="queue_limit"):
            MiningService(n_workers=1, queue_limit=0)


class TestFairShare:
    def test_equal_weights_alternate(self, gated_algo, recorder_algo):
        gate, release = gated_algo
        rec, order = recorder_algo
        with MiningService(n_workers=1) as svc:
            wait_running(svc.submit(TXNS, _cfg(gate)))
            jobs = []
            for i in range(4):
                jobs.append(svc.submit(TXNS, _cfg(rec, f"a{i}"), tenant="a"))
            for i in range(4):
                jobs.append(svc.submit(TXNS, _cfg(rec, f"b{i}"), tenant="b"))
            release.set()
            for job in jobs:
                assert svc.wait(job.job_id, 30).state is JobState.DONE
        tenants = [tag[0] for tag in order]
        # deficit round-robin with equal weights: strict alternation, so
        # tenant b is never starved behind a's earlier-submitted backlog
        assert tenants == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_weighted_tenant_gets_proportional_share(
        self, gated_algo, recorder_algo
    ):
        gate, release = gated_algo
        rec, order = recorder_algo
        with MiningService(n_workers=1, tenant_weights={"a": 2.0}) as svc:
            wait_running(svc.submit(TXNS, _cfg(gate)))
            jobs = []
            for i in range(4):
                jobs.append(svc.submit(TXNS, _cfg(rec, f"a{i}"), tenant="a"))
            for i in range(4):
                jobs.append(svc.submit(TXNS, _cfg(rec, f"b{i}"), tenant="b"))
            release.set()
            for job in jobs:
                assert svc.wait(job.job_id, 30).state is JobState.DONE
        tenants = [tag[0] for tag in order]
        # weight 2 drains two jobs per round for tenant b's one
        assert tenants[:6] == ["a", "a", "b", "a", "a", "b"]

    def test_priority_still_orders_within_tenant(self, gated_algo, recorder_algo):
        gate, release = gated_algo
        rec, order = recorder_algo
        with MiningService(n_workers=1) as svc:
            wait_running(svc.submit(TXNS, _cfg(gate)))
            low = svc.submit(TXNS, _cfg(rec, "low"), tenant="a", priority=5)
            high = svc.submit(TXNS, _cfg(rec, "high"), tenant="a", priority=-5)
            release.set()
            for job in (low, high):
                assert svc.wait(job.job_id, 30).state is JobState.DONE
        assert order == ["high", "low"]

    def test_tenant_weight_validation(self):
        with pytest.raises(ServeError, match="weight"):
            MiningService(n_workers=1, tenant_weights={"a": 0.0})

    def test_tenant_stats_and_metrics(self, recorder_algo):
        rec, _ = recorder_algo
        with MiningService(n_workers=1, tenant_weights={"a": 2.0}) as svc:
            for i in range(2):
                svc.wait(svc.submit(TXNS, _cfg(rec, f"a{i}"), tenant="a").job_id, 30)
            svc.wait(svc.submit(TXNS, _cfg(rec, "b0"), tenant="b").job_id, 30)
            stats = svc.tenant_stats()
            assert stats["a"]["submitted"] == 2 and stats["a"]["done"] == 2
            assert stats["a"]["weight"] == 2.0
            assert stats["b"]["submitted"] == 1 and stats["b"]["weight"] == 1.0
            assert svc.metrics()["tenants"] == stats

    def test_rejects_bad_tenant(self):
        with MiningService(n_workers=1) as svc:
            with pytest.raises(ServeError, match="tenant"):
                svc.submit(TXNS, CFG, tenant="")


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0 and snap["p50_s"] == 0.0

    def test_percentile_ordering(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.record(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["p50_s"] <= snap["p95_s"] <= snap["p99_s"] <= snap["max_s"]
        assert snap["p50_s"] == pytest.approx(0.050, abs=0.005)
        assert snap["p99_s"] == pytest.approx(0.099, abs=0.005)

    def test_window_bounded_but_count_lifetime(self):
        hist = LatencyHistogram(max_samples=8)
        for i in range(100):
            hist.record(float(i))
        snap = hist.snapshot()
        assert snap["count"] == 100  # lifetime
        assert snap["p50_s"] >= 92.0  # percentile over the recent window

    def test_service_records_queue_wait_and_run_time(self):
        with MiningService(n_workers=1) as svc:
            for support in (0.3, 0.4):
                cfg = MiningConfig(min_support=support, backend="serial")
                svc.wait(svc.submit(TXNS, cfg).job_id, 30)
            m = svc.metrics()["latency"]
            assert m["queue_wait"]["count"] == 2
            assert m["run"]["count"] == 2
            assert m["run"]["p50_s"] <= m["run"]["p99_s"]
            # memoized hits never enter the queue, so no new samples
            svc.submit(TXNS, MiningConfig(min_support=0.3, backend="serial"))
            assert svc.metrics()["latency"]["queue_wait"]["count"] == 2
