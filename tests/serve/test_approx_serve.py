"""Serving-tier tests for the approximate fast tier.

Covers the exact-over-approx memoization contract, the planner's
fast-tier routing, and the HTTP surface (top-level ``approx`` flag,
provenance payload, exact-upgrade observability).
"""

import pytest

from repro.core.approx import ApproxResult
from repro.core.registry import MiningConfig
from repro.serve.cache import ResultCache
from repro.serve.client import HttpClient
from repro.serve.http import MiningServer
from repro.serve.planner import CostPlanner
from repro.serve.service import MiningService

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["b", "c"],
    ["a", "c"],
    ["d"],
] * 20

APPROX = MiningConfig(
    min_support=0.3, approx=True, sample_frac=0.5, backend="serial"
)
EXACT = APPROX.exact_twin()


class TestResultCacheUpgrade:
    def test_put_approx_then_get(self):
        cache = ResultCache()
        cache.put_approx(("fp", "a"), "approx-result", exact_key=("fp", "e"))
        assert cache.get(("fp", "a")) == "approx-result"
        assert cache.get(("fp", "e")) is None

    def test_exact_put_upgrades_approx_entries(self):
        cache = ResultCache()
        cache.put_approx(("fp", "a1"), "approx-1", exact_key=("fp", "e"))
        cache.put_approx(("fp", "a2"), "approx-2", exact_key=("fp", "e"))
        cache.put(("fp", "e"), "exact")
        # the superseded approx entries are gone; the exact one answers
        assert cache.get(("fp", "a1")) is None
        assert cache.get(("fp", "a2")) is None
        assert cache.get(("fp", "e")) == "exact"
        assert cache.stats()["upgrades"] == 2

    def test_exact_put_without_approx_entries_is_plain(self):
        cache = ResultCache()
        cache.put(("fp", "e"), "exact")
        assert cache.stats()["upgrades"] == 0

    def test_index_prunes_dead_entries(self):
        cache = ResultCache(max_entries=1)
        cache.put_approx(("fp", "a1"), "approx-1", exact_key=("fp", "e"))
        cache.put_approx(("fp", "a2"), "approx-2", exact_key=("fp", "e"))  # evicts a1
        assert cache.stats()["approx_indexed"] == 1

    def test_index_prunes_on_unrelated_eviction(self):
        # the evicting put is for a DIFFERENT exact key: the approx
        # entry's index row must still be cleaned, and the now-empty
        # row dropped entirely (long-running servers would otherwise
        # accumulate one dead row per (dataset, config) pair)
        cache = ResultCache(max_entries=1)
        cache.put_approx(("fp", "a1"), "approx-1", exact_key=("fp", "e"))
        cache.put(("fp2", "x"), "other")  # evicts a1
        assert cache.stats()["approx_indexed"] == 0
        assert cache._approx_for == {}
        assert cache._exact_of == {}

    def test_index_prunes_on_expiration(self):
        cache = ResultCache(ttl_s=10.0)
        cache.put_approx(("fp", "a1"), "approx-1", exact_key=("fp", "e"), now=0.0)
        assert cache.get(("fp", "a1"), now=20.0) is None  # expired
        assert cache.stats()["approx_indexed"] == 0
        assert cache._approx_for == {}
        assert cache._exact_of == {}

    def test_get_first_records_one_miss_for_the_whole_probe(self):
        cache = ResultCache()
        assert cache.get_first([("fp", "e"), ("fp", "a")]) is None
        assert cache.misses == 1 and cache.hits == 0
        cache.put_approx(("fp", "a"), "approx", exact_key=("fp", "e"))
        assert cache.get_first([("fp", "e"), ("fp", "a")]) == "approx"
        assert cache.misses == 1 and cache.hits == 1


class TestServiceApproxFlow:
    def test_approx_job_runs_and_carries_provenance(self):
        with MiningService(n_workers=1) as svc:
            job = svc.submit(TXNS, APPROX)
            assert job.wait(60)
            assert job.state.value == "done", job.error
            assert isinstance(job.result, ApproxResult)
            assert job.result.n_samples == APPROX.approx_samples

    def test_exact_completion_upgrades_memoized_entry(self):
        with MiningService(n_workers=1) as svc:
            j1 = svc.submit(TXNS, APPROX)
            assert j1.wait(60) and j1.state.value == "done", j1.error
            # approx resubmit hits the approx entry
            j2 = svc.submit(TXNS, APPROX)
            assert j2.via == "memoized"
            assert isinstance(j2.result, ApproxResult)
            # the exact twin completes -> its entry supersedes the approx one
            j3 = svc.submit(TXNS, EXACT)
            assert j3.wait(120) and j3.state.value == "done", j3.error
            assert svc.results.stats()["upgrades"] == 1
            # approx resubmit is now answered by the exact result
            j4 = svc.submit(TXNS, APPROX)
            assert j4.via == "memoized"
            assert not isinstance(j4.result, ApproxResult)

    def test_approx_hit_never_shadows_exact_entry(self):
        with MiningService(n_workers=1) as svc:
            j1 = svc.submit(TXNS, EXACT)
            assert j1.wait(120) and j1.state.value == "done", j1.error
            # a first-time approx submission short-circuits on the exact twin
            job = svc.submit(TXNS, APPROX)
            assert job.via == "memoized"
            assert not isinstance(job.result, ApproxResult)

    def test_twin_probe_counts_one_miss_per_submit(self):
        with MiningService(n_workers=1) as svc:
            job = svc.submit(TXNS, APPROX)  # no twin, no own entry: ONE miss
            assert svc.results.misses == 1
            assert job.wait(60) and job.state.value == "done", job.error


class TestPlannerFastTier:
    @staticmethod
    def _slow_planner(**kwargs):
        # a huge unit cost makes any dataset look expensive, forcing the
        # estimate over the fast-tier cutoff without big fixtures
        # (routing itself is opt-in, so the cutoff is set explicitly)
        kwargs.setdefault("approx_cutoff_s", 1.0)
        return CostPlanner(unit_cost_s=1.0, **kwargs)

    def test_routing_is_opt_in(self):
        # default planner: no cutoff -> even an expensive interactive job
        # stays exact; silently trading completeness for latency must be
        # an explicit operator decision
        planner = CostPlanner(unit_cost_s=1.0)
        assert planner.approx_cutoff_s is None
        planned, decision = planner.plan(TXNS, MiningConfig(min_support=0.3))
        assert not planned.approx
        assert not decision.routed_fast

    def test_interactive_expensive_job_routes_to_fast_tier(self):
        planner = self._slow_planner()
        planned, decision = planner.plan(TXNS, MiningConfig(min_support=0.3))
        assert planned.approx
        assert decision.chosen["approx"] is True
        assert "fast tier" in decision.reason
        assert decision.routed_fast
        assert decision.snapshot()["routed_fast"] is True

    def test_batch_priority_stays_exact(self):
        planner = self._slow_planner()
        planned, _ = planner.plan(TXNS, MiningConfig(min_support=0.3), priority=5)
        assert not planned.approx

    def test_pinned_approx_is_respected(self):
        planner = self._slow_planner()
        planned, decision = planner.plan(
            TXNS, MiningConfig(min_support=0.3), pinned=("approx",)
        )
        assert not planned.approx
        assert "approx" in decision.pinned

    def test_explicit_approx_counts_as_pinned(self):
        planner = self._slow_planner()
        planned, decision = planner.plan(TXNS, APPROX)
        assert planned.approx  # kept, not chosen
        assert "approx" not in decision.chosen
        assert "approx" in decision.pinned

    def test_cutoff_none_disables_routing(self):
        planner = self._slow_planner(approx_cutoff_s=None)
        planned, _ = planner.plan(TXNS, MiningConfig(min_support=0.3))
        assert not planned.approx

    def test_cheap_job_stays_exact(self):
        # realistic unit cost: the tiny dataset estimates under the cutoff
        planner = CostPlanner(approx_cutoff_s=1.0)
        planned, decision = planner.plan(TXNS, MiningConfig(min_support=0.3))
        assert not planned.approx
        assert decision.estimated_seconds < planner.approx_cutoff_s

    def test_approx_estimate_cheaper_than_exact(self):
        planner = CostPlanner()
        stats = planner.stats_for(TXNS)
        exact_est = planner.estimate_seconds(stats, EXACT)
        approx_est = planner.estimate_seconds(stats, APPROX)
        assert approx_est < exact_est

    def test_approx_config_plans_even_for_non_engine_algorithm(self):
        planner = CostPlanner()
        config = MiningConfig(min_support=0.3, algorithm="apriori", approx=True)
        _, decision = planner.plan(TXNS, config)
        assert decision.work_units > 0  # not the unplanned early-return

    def test_reroute_stamped_on_job_snapshot(self):
        from repro.serve.router import ShardRouter

        planner = self._slow_planner()
        with ShardRouter(n_shards=1, n_workers=1, planner=planner) as router:
            job = router.submit(
                TXNS, MiningConfig(min_support=0.3, backend="serial")
            )
            assert job.wait(60) and job.state.value == "done", job.error
            assert job.fast_tier
            assert job.snapshot()["fast_tier"] is True
            assert isinstance(job.result, ApproxResult)


class TestHttpApprox:
    @pytest.fixture(scope="class")
    def server(self):
        with MiningServer(port=0, n_workers=2) as server:
            yield server

    def test_round_trip_with_provenance(self, server):
        client = HttpClient(server.url)
        snap = client.submit(
            TXNS, MiningConfig(min_support=0.3, sample_frac=0.5, backend="serial"),
            approx=True,
        )
        final = client.wait(snap["job_id"], 60)
        assert final["state"] == "done", final
        detail = client.result_detail(snap["job_id"])
        approx = detail["approx"]
        assert approx["n_samples"] == 4
        assert approx["sample_frac"] == 0.5
        assert len(approx["sample_sizes"]) == 4
        assert isinstance(approx["verified_exact"], bool)
        assert isinstance(approx["border_violations"], list)

    def test_exact_resubmit_upgrades_served_entry(self, server):
        client = HttpClient(server.url)
        config = MiningConfig(min_support=0.4, sample_frac=0.5, backend="serial")
        snap = client.submit(TXNS, config, approx=True)
        assert client.wait(snap["job_id"], 60)["state"] == "done"
        # the exact twin runs...
        exact_snap = client.submit(TXNS, config)
        assert client.wait(exact_snap["job_id"], 120)["state"] == "done"
        # ...so a fresh approx submit memoizes onto the exact entry:
        # no approx provenance block on the served result
        again = client.submit(TXNS, config, approx=True)
        assert again["via"] == "memoized"
        detail = client.result_detail(again["job_id"])
        assert "approx" not in detail

    def test_unknown_top_level_field_still_rejected(self, server):
        client = HttpClient(server.url)
        with pytest.raises(Exception, match="unknown field"):
            client._request(
                "POST", "/jobs",
                {"transactions": [["a"]], "config": {"min_support": 0.5},
                 "aprox": True},
            )
