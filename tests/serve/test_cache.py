"""Cross-job cache behaviour: fingerprints, LRU byte budget, TTL, contexts."""

import pytest

from repro.core.registry import MiningConfig
from repro.serve.cache import (
    ContextPool,
    DatasetCache,
    LruByteCache,
    ResultCache,
    dataset_fingerprint,
)


class TestDatasetFingerprint:
    def test_deterministic(self):
        txns = [[1, 2, 3], [2, 4]]
        assert dataset_fingerprint(txns) == dataset_fingerprint([list(t) for t in txns])

    def test_content_sensitive(self):
        assert dataset_fingerprint([[1, 2]]) != dataset_fingerprint([[1, 3]])
        assert dataset_fingerprint([[1], [2]]) != dataset_fingerprint([[1, 2]])

    def test_int_and_str_items_agree(self):
        # .dat round-trips render items with str(); the fingerprint must too
        assert dataset_fingerprint([[1, 2]]) == dataset_fingerprint([["1", "2"]])

    def test_injective_for_items_containing_separators(self):
        # a space-join would conflate these, silently handing one tenant
        # another dataset's cache entry (and its memoized results)
        assert dataset_fingerprint([["a b"]]) != dataset_fingerprint([["a", "b"]])
        assert dataset_fingerprint([["a", "b c"]]) != dataset_fingerprint([["a b", "c"]])
        assert dataset_fingerprint([["a\nb"]]) != dataset_fingerprint([["a"], ["b"]])


class TestLruByteCache:
    def test_hit_miss_counters(self):
        cache = LruByteCache(max_bytes=1 << 20)
        assert cache.get("a") is None
        cache.put("a", [1, 2, 3])
        assert cache.get("a") == [1, 2, 3]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_byte_budget_evicts_lru(self):
        cache = LruByteCache(max_bytes=1)  # everything over budget
        cache.put("a", list(range(100)))
        cache.put("b", list(range(100)))
        # single-entry floor: newest survives even over budget
        assert "b" in cache and "a" not in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        from repro.common.sizeof import estimate_size

        big = list(range(200))
        cache = LruByteCache(max_bytes=int(estimate_size(big) * 2.5))
        cache.put("a", big)
        cache.put("b", big)
        cache.get("a")  # a is now most-recent
        cache.put("c", big)  # must evict b, not a
        assert "a" in cache and "b" not in cache

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            LruByteCache(max_bytes=0)


class TestDatasetCache:
    def test_add_returns_fingerprint_and_caches(self):
        cache = DatasetCache(1 << 20)
        txns = [[1, 2], [2, 3]]
        fp = cache.add(txns)
        assert fp == dataset_fingerprint(txns)
        assert cache.get(fp) == txns

    def test_re_add_is_idempotent(self):
        cache = DatasetCache(1 << 20)
        fp1 = cache.add([[1, 2]])
        fp2 = cache.add([[1, 2]])
        assert fp1 == fp2 and len(cache) == 1


class TestResultCache:
    def test_ttl_expiry(self):
        cache = ResultCache(max_entries=4, ttl_s=10.0)
        cache.put(("fp", "cfg"), "result", now=0.0)
        assert cache.get(("fp", "cfg"), now=5.0) == "result"
        assert cache.get(("fp", "cfg"), now=10.0) is None  # expired
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_lru_bound(self):
        cache = ResultCache(max_entries=2, ttl_s=100.0)
        for i in range(3):
            cache.put((f"fp{i}", "c"), i, now=0.0)
        assert cache.get(("fp0", "c"), now=1.0) is None
        assert cache.get(("fp2", "c"), now=1.0) == 2
        assert cache.evictions == 1

    def test_stats_shape(self):
        stats = ResultCache().stats()
        assert {"entries", "hits", "misses", "hit_rate", "ttl_s"} <= set(stats)


class TestContextPool:
    def test_reuses_released_context(self):
        pool = ContextPool()
        try:
            ctx = pool.acquire("serial", None)
            pool.release(ctx)
            again = pool.acquire("serial", None)
            assert again is ctx
            assert pool.created == 1 and pool.reused == 1
            pool.release(again)
        finally:
            pool.close()

    def test_renewed_context_has_fresh_observability(self):
        pool = ContextPool()
        try:
            ctx = pool.acquire("serial", None, label="first")
            ctx.parallelize(range(10), 2).map(lambda x: x + 1).collect()
            assert ctx.event_log.tasks
            pool.release(ctx)
            ctx = pool.acquire("serial", None, label="second")
            assert not ctx.event_log.tasks
            assert not ctx.tracer.spans
            assert ctx.tracer.label == "second"
            assert ctx.shuffle_manager.metrics.bytes_written == 0
            pool.release(ctx)
        finally:
            pool.close()

    def test_release_drops_cached_blocks(self):
        # RDD ids never repeat, so blocks cached by a finished run are
        # unreachable from the next run — pooling them would leak one
        # dataset's worth of memory per served job
        pool = ContextPool()
        try:
            ctx = pool.acquire("serial", None)
            ctx.parallelize(range(100), 4).cache().count()
            assert ctx.block_manager.cached_block_count == 4
            pool.release(ctx)
            assert ctx.block_manager.cached_block_count == 0
            again = pool.acquire("serial", None)
            assert again is ctx
            assert again.block_manager.cached_block_count == 0
            assert again.block_manager.metrics.memory_bytes == 0
            pool.release(again)
        finally:
            pool.close()

    def test_release_resets_process_executor_shipping(self):
        # The block manager is not the only thing pinning a dataset: on
        # the processes backend the executor keeps its own driver-side
        # payload registry and the workers keep resident stores — an idle
        # pooled context must shed those too.
        pool = ContextPool()
        try:
            ctx = pool.acquire("processes", 2)
            bc = ctx.broadcast(list(range(500)))
            got = ctx.parallelize(range(4), 4).map(lambda x, b=bc: b.value[x]).collect()
            assert got == [0, 1, 2, 3]
            assert ctx.executor._bc_payloads or ctx.executor._driver_blocks
            pool.release(ctx)
            assert not ctx.executor._driver_blocks
            assert not ctx.executor._blob_cache
            assert not ctx.executor._bc_payloads
            assert ctx.executor.shipping_metrics.total_shipped_bytes == 0
            for handle in ctx.executor._handles:
                assert not handle.known
        finally:
            pool.close()

    def test_close_stops_idle_contexts(self):
        pool = ContextPool()
        ctx = pool.acquire("serial", None)
        pool.release(ctx)
        pool.close()
        with pytest.raises(RuntimeError):
            ctx.parallelize([1])
        # releasing after close stops, not pools
        late = ContextPool()
        c2 = late.acquire("serial", None)
        late.close()
        late.release(c2)
        with pytest.raises(RuntimeError):
            c2.parallelize([1])


class TestMiningConfigCacheKey:
    def test_stable_across_option_order(self):
        a = MiningConfig(min_support=0.3, options={"x": 1, "y": 2})
        b = MiningConfig(min_support=0.3, options={"y": 2, "x": 1})
        assert a.cache_key() == b.cache_key()

    def test_differs_on_any_knob(self):
        base = MiningConfig(min_support=0.3)
        assert base.cache_key() != MiningConfig(min_support=0.31).cache_key()
        assert base.cache_key() != MiningConfig(min_support=0.3, algorithm="pfp").cache_key()
        assert base.cache_key() != MiningConfig(min_support=0.3, max_length=2).cache_key()

    def test_canonical_is_json_round_trippable(self):
        import json

        cfg = MiningConfig(min_support=0.5, algorithm="eclat", options={"k": True})
        assert json.loads(json.dumps(cfg.canonical())) == cfg.canonical()


class TestDatasetCachePrecomputedFingerprint:
    def test_add_accepts_precomputed_fingerprint(self):
        # the router fingerprints once for ring placement; add() must not
        # redo the sha256 pass — and must file under the supplied key
        cache = DatasetCache(1 << 20)
        txns = [[1, 2], [2, 3]]
        fp = dataset_fingerprint(txns)
        assert cache.add(txns, fingerprint=fp) == fp
        assert cache.get(fp) == txns


class TestCachesUnderConcurrentLoad:
    """Satellite coverage: TTL expiry and LRU eviction while a service is
    actively submitting — the counters and bounds must hold under races."""

    def _service(self, **kwargs):
        from repro.serve import MiningService

        return MiningService(n_workers=2, **kwargs)

    def test_result_ttl_expiry_under_concurrent_resubmits(self):
        import threading
        import time

        from repro.core.registry import MiningConfig

        txns = [[1, 2, 3], [1, 2], [2, 3]]
        cfg = MiningConfig(min_support=0.4, backend="serial")
        with self._service(result_ttl_s=0.05) as svc:
            svc.wait(svc.submit(txns, cfg).job_id, 30)
            time.sleep(0.1)  # let the memoized entry expire
            vias = []
            lock = threading.Lock()

            def resubmit():
                job = svc.submit(txns, cfg)
                svc.wait(job.job_id, 30)
                with lock:
                    vias.append(job.via)

            threads = [threading.Thread(target=resubmit) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            # the expired entry forces exactly one fresh run; everyone else
            # either coalesces onto it or memoizes its (fresh) result
            assert vias.count("run") == 1, vias
            assert set(vias) <= {"run", "coalesced", "memoized"}
            assert svc.results.expirations >= 1

    def test_dataset_cache_lru_eviction_under_concurrent_submits(self):
        import threading

        from repro.core.registry import MiningConfig

        datasets = [
            [[seed, seed + 1, seed + 2], [seed, seed + 1], [seed + 500]]
            for seed in range(0, 160, 10)
        ]
        cfg = MiningConfig(min_support=0.4, backend="serial")
        # a budget of ~6 of the 16 datasets: eviction must fire while
        # jobs stream in, without corrupting or failing any job — a job
        # whose dataset is evicted while queued runs from its own pin
        with self._service(dataset_cache_bytes=256) as svc:
            results = {}
            lock = threading.Lock()

            def mine_one(i, txns):
                job = svc.submit(txns, cfg)
                svc.wait(job.job_id, 60)
                with lock:
                    results[i] = job

            threads = [
                threading.Thread(target=mine_one, args=(i, d))
                for i, d in enumerate(datasets)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert len(results) == len(datasets)
            assert all(j.state.value == "done" for j in results.values())
            stats = svc.datasets.stats()
            assert stats["evictions"] > 0
            assert stats["entries"] < len(datasets)
            assert stats["bytes"] <= 256

    def test_queued_job_survives_dataset_eviction(self):
        import threading

        from repro.core.registry import (
            MiningConfig,
            register_algorithm,
            unregister_algorithm,
        )
        from repro.core.results import MiningRunResult
        from repro.serve import JobState

        release = threading.Event()

        def gated(txns, config):
            release.wait(15.0)
            out = MiningRunResult(
                algorithm=config.algorithm,
                min_support=config.min_support,
                n_transactions=len(txns),
            )
            out.itemsets = {(1,): len(txns)}
            return out

        register_algorithm("cache_gate_algo", gated, overwrite=True)
        try:
            from repro.serve import MiningService

            cfg = MiningConfig(min_support=0.4, algorithm="cache_gate_algo")
            with MiningService(n_workers=1, dataset_cache_bytes=256) as svc:
                gate = svc.submit([[1, 2], [2, 3]], cfg)
                queued = svc.submit([[7, 8], [8, 9], [9, 10]], cfg)
                # push the queued job's dataset out of the byte budget
                for seed in range(1000, 1160, 10):
                    svc.datasets.add([[seed, seed + 1], [seed + 2]])
                assert svc.datasets.get(queued.dataset_fingerprint) is None
                release.set()
                for job in (gate, queued):
                    assert svc.wait(job.job_id, 30).state is JobState.DONE
                assert queued.result.itemsets == {(1,): 3}
                # the run re-warmed the cache from the pin, then the pin
                # was dropped at completion
                assert svc.datasets.get(queued.dataset_fingerprint) is not None
                assert queued._txns is None
        finally:
            release.set()
            unregister_algorithm("cache_gate_algo")
