"""Named datasets: versioned fingerprints, stale-result invalidation,
warm incremental miners, and name-stable routing.

The load-bearing invariant (pinned here in exact, approx, and HTTP
flavours): once a dataset is appended to, no job submitted afterwards is
ever answered from a result memoized before the append.
"""

import pytest

from repro.core.api import mine_frequent_itemsets
from repro.core.registry import MiningConfig
from repro.serve import (
    ApiError,
    DatasetRegistry,
    FingerprintChain,
    HttpClient,
    LruByteCache,
    MiningServer,
    MiningService,
    ResultCache,
    ServeError,
    ShardRouter,
    dataset_fingerprint,
)

BASE = [("a", "b", "c")] * 4 + [("a", "c")] * 4 + [("b", "c")] * 4
DELTA = [("a", "b", "c")] * 4
CFG = MiningConfig(min_support=0.5, backend="serial")
INC = MiningConfig(min_support=0.5, backend="serial", incremental=True)


def oracle(txns, config=CFG):
    exact = MiningConfig(min_support=config.min_support, backend="serial")
    return mine_frequent_itemsets(txns, config=exact).itemsets


class TestFingerprintChain:
    def test_chained_equals_one_shot(self):
        txns = BASE + DELTA + [("x", "y")]
        for split1 in (0, 1, 5, len(BASE)):
            chain = FingerprintChain(txns[:split1])
            chain.extend(txns[split1:split1 + 3])
            final = chain.extend(txns[split1 + 3:])
            assert final == dataset_fingerprint(txns)  # byte-identical
            assert chain.hexdigest() == final
            assert chain.n_transactions == len(txns)

    def test_every_version_is_a_real_fingerprint(self):
        chain = FingerprintChain(BASE)
        assert chain.hexdigest() == dataset_fingerprint(BASE)
        v2 = chain.extend(DELTA)
        assert v2 == dataset_fingerprint(BASE + DELTA)

    def test_copy_is_independent(self):
        chain = FingerprintChain(BASE)
        clone = chain.copy()
        clone.extend(DELTA)
        assert chain.hexdigest() == dataset_fingerprint(BASE)
        assert clone.hexdigest() == dataset_fingerprint(BASE + DELTA)
        assert clone.n_transactions == len(BASE) + len(DELTA)

    def test_injective_encoding(self):
        assert dataset_fingerprint([["a b"]]) != dataset_fingerprint([["a", "b"]])
        assert dataset_fingerprint([["ab"], ["c"]]) != dataset_fingerprint(
            [["ab", "c"]]
        )

    def test_int_str_render_identically(self):
        assert dataset_fingerprint([[1, 2], [3]]) == dataset_fingerprint(
            [["1", "2"], ["3"]]
        )


class TestLruByteCacheRemove:
    def test_remove_present(self):
        cache = LruByteCache(1 << 20)
        cache.put("k", [1, 2, 3])
        assert cache.remove("k") is True
        assert "k" not in cache and cache.current_bytes == 0
        assert cache.evictions == 0  # mutation, not pressure

    def test_remove_absent(self):
        cache = LruByteCache(1 << 20)
        assert cache.remove("missing") is False


class TestResultCacheInvalidation:
    def test_drops_only_the_stale_fingerprint(self):
        cache = ResultCache(max_entries=16, ttl_s=60.0)
        cache.put(("fp1", "cfgA"), "a1")
        cache.put(("fp1", "cfgB"), "b1")
        cache.put(("fp2", "cfgA"), "a2")
        assert cache.invalidate_dataset("fp1") == 2
        assert cache.get(("fp1", "cfgA")) is None
        assert cache.get(("fp2", "cfgA")) == "a2"
        assert cache.stats()["invalidations"] == 2

    def test_prunes_approx_twin_index(self):
        """An invalidated approx entry must leave the exact-twin index,
        and a later exact put under the reused key must not 'upgrade'
        entries of a window that no longer exists."""
        cache = ResultCache(max_entries=16, ttl_s=60.0)
        cache.put_approx(("fp1", "approxK"), "approx", exact_key=("fp1", "exactK"))
        assert cache.stats()["approx_indexed"] == 1
        assert cache.invalidate_dataset("fp1") == 1
        assert cache.stats()["approx_indexed"] == 0
        cache.put(("fp1", "exactK"), "exact")
        assert cache.stats()["upgrades"] == 0

    def test_invalidating_exact_forgets_pending_approx_keys(self):
        cache = ResultCache(max_entries=16, ttl_s=60.0)
        cache.put_approx(("fp1", "approxK"), "approx", exact_key=("fp1", "exactK"))
        cache.put(("fp1", "exactK"), "exact")  # upgrades the approx entry
        assert cache.stats()["upgrades"] == 1
        assert cache.invalidate_dataset("fp1") == 1
        assert len(cache) == 0 and cache.stats()["approx_indexed"] == 0


class TestDatasetRegistry:
    def test_create_and_fingerprint(self):
        reg = DatasetRegistry()
        entry, replaced = reg.create("w", BASE)
        assert replaced is None
        assert entry.version == 1
        assert entry.fingerprint == dataset_fingerprint(BASE)
        assert entry.versions == {1: entry.fingerprint}

    def test_duplicate_name_conflicts(self):
        reg = DatasetRegistry()
        reg.create("w", BASE)
        with pytest.raises(ApiError) as err:
            reg.create("w", BASE)
        assert err.value.status == 409 and err.value.code == "dataset_exists"

    def test_replace_returns_the_old_entry(self):
        reg = DatasetRegistry()
        entry, _ = reg.create("w", BASE)
        old_fp = entry.fingerprint
        entry2, replaced = reg.create("w", DELTA, replace=True)
        assert replaced is entry
        assert replaced.fingerprint == old_fp
        assert entry2.fingerprint == dataset_fingerprint(DELTA)

    def test_unknown_dataset(self):
        with pytest.raises(ApiError) as err:
            DatasetRegistry().get("nope")
        assert err.value.status == 404 and err.value.code == "unknown_dataset"
        assert err.value.payload() == {
            "error": str(err.value), "code": "unknown_dataset",
        }

    def test_append_advances_version(self):
        reg = DatasetRegistry()
        entry, _ = reg.create("w", BASE)
        with entry.lock:
            res = entry.append(DELTA)
        assert entry.version == 2
        assert res.old_version == 1 and res.new_version == 2
        assert res.old_fingerprint == dataset_fingerprint(BASE)
        assert res.new_fingerprint == dataset_fingerprint(BASE + DELTA)
        # unpinned old versions are pruned; only the live one remains
        assert entry.versions == {2: res.new_fingerprint}
        assert entry.info()["n_transactions"] == len(BASE) + len(DELTA)

    def test_pinned_versions_survive_pruning(self):
        reg = DatasetRegistry()
        entry, _ = reg.create("w", BASE)
        v1_fp = entry.fingerprint
        entry.pin_version(1)
        with entry.lock:
            entry.append(DELTA)
        assert 1 in entry.versions and entry.versions[1] == v1_fp
        entry.release_version(1)
        with entry.lock:
            entry.append([("x", "y")])
        assert 1 not in entry.versions

    def test_empty_create_rejected_and_empty_append_is_noop(self):
        reg = DatasetRegistry()
        with pytest.raises(ApiError):
            reg.create("w", [])
        entry, _ = reg.create("w2", BASE)
        with entry.lock:
            assert entry.append([]) is None  # no retire due: nothing to do
        assert entry.version == 1


@pytest.fixture
def service():
    with MiningService(n_workers=1, result_ttl_s=60.0) as svc:
        yield svc


class TestServiceDatasets:
    def test_submit_by_name_matches_direct_mine(self, service):
        service.create_dataset("w", BASE)
        job = service.submit(None, CFG, dataset_id="w")
        assert job.wait(30.0)
        assert job.result.itemsets == oracle(BASE)
        assert job.dataset_id == "w" and job.dataset_version == 1
        assert job.snapshot()["dataset_version"] == 1

    def test_resubmit_memoizes(self, service):
        service.create_dataset("w", BASE)
        assert service.submit(None, CFG, dataset_id="w").wait(30.0)
        again = service.submit(None, CFG, dataset_id="w")
        assert again.via == "memoized"

    def test_append_never_serves_stale_exact_result(self, service):
        """Satellite invariant, exact tier: the pre-append memoized
        result must not answer any post-append submission."""
        service.create_dataset("w", BASE)
        pre = service.submit(None, CFG, dataset_id="w")
        assert pre.wait(30.0)
        info = service.append_dataset("w", DELTA, expected_version=1)
        assert info["version"] == 2
        assert info["invalidated_results"] >= 1
        post = service.submit(None, CFG, dataset_id="w")
        assert post.wait(30.0)
        assert post.via == "run"
        assert post.dataset_version == 2
        assert post.result.itemsets == oracle(BASE + DELTA)
        assert post.result.itemsets != pre.result.itemsets

    def test_append_never_serves_stale_approx_result(self, service):
        """Same invariant through the approx tier, whose entries are
        additionally indexed under their exact twin's key."""
        approx = MiningConfig(
            min_support=0.5, backend="serial", approx=True,
            approx_samples=2, sample_frac=0.5,
        )
        service.create_dataset("w", BASE)
        assert service.submit(None, approx, dataset_id="w").wait(30.0)
        assert service.submit(None, approx, dataset_id="w").via == "memoized"
        service.append_dataset("w", DELTA)
        post = service.submit(None, approx, dataset_id="w")
        assert post.wait(30.0)
        assert post.via == "run"

    def test_version_conflict(self, service):
        service.create_dataset("w", BASE)
        service.append_dataset("w", DELTA, expected_version=1)
        with pytest.raises(ApiError) as err:
            service.append_dataset("w", DELTA, expected_version=1)
        assert err.value.status == 409 and err.value.code == "version_conflict"
        assert service.dataset_info("w")["version"] == 2  # nothing changed

    def test_replace_invalidates_old_contents(self, service):
        service.create_dataset("w", BASE)
        assert service.submit(None, CFG, dataset_id="w").wait(30.0)
        service.create_dataset("w", DELTA, replace=True)
        job = service.submit(None, CFG, dataset_id="w")
        assert job.wait(30.0)
        assert job.via == "run"
        assert job.result.itemsets == oracle(DELTA)

    def test_transactions_xor_dataset_id(self, service):
        service.create_dataset("w", BASE)
        with pytest.raises(ServeError):
            service.submit(BASE, CFG, dataset_id="w")
        with pytest.raises(ServeError):
            service.submit(None, CFG)

    def test_warm_miner_folds_only_the_delta(self, service):
        """Incremental serving: the second job after an append must reuse
        the dataset's warm miner with a delta update, not rebuild."""
        service.create_dataset("w", BASE)
        first = service.submit(None, INC, dataset_id="w")
        assert first.wait(30.0)
        assert first.result.itemsets == oracle(BASE)
        entry = service.dataset_registry.get("w")
        assert len(entry.miners) == 1
        (miner,) = entry.miners.values()
        assert miner.n_transactions == len(BASE)
        service.append_dataset("w", DELTA)  # existing items: no dict shift
        second = service.submit(None, INC, dataset_id="w")
        assert second.wait(30.0)
        assert second.via == "run"
        assert second.result.itemsets == oracle(BASE + DELTA)
        assert miner.n_transactions == len(BASE) + len(DELTA)
        assert miner.last_update.kind == "append"
        assert not miner.last_update.full_rebuild
        assert miner.ctx is None  # the lent context was detached

    def test_warm_miner_survives_memoized_hits(self, service):
        service.create_dataset("w", BASE)
        assert service.submit(None, INC, dataset_id="w").wait(30.0)
        assert service.submit(None, INC, dataset_id="w").via == "memoized"
        assert service.dataset_info("w")["warm_miners"] == 1

    def test_metrics_carry_registry_stats(self, service):
        service.create_dataset("w", BASE)
        service.append_dataset("w", DELTA)
        stats = service.metrics()["dataset_registry"]
        assert stats["datasets"] == 1
        assert stats["creates"] == 1 and stats["appends"] == 1


class TestRouterDatasets:
    def test_home_is_name_stable_across_appends(self):
        with ShardRouter(n_shards=3, n_workers=1) as router:
            router.create_dataset("w", BASE)
            home = router.dataset_home("w")
            router.append_dataset("w", DELTA)
            assert router.dataset_home("w") == home  # fingerprint moved, home didn't
            # the dataset lives only on its home shard
            owners = [
                s.name for s in router.shards
                if len(s.service.dataset_registry)
            ]
            assert owners == [home]

    def test_dataset_jobs_pin_to_the_home_shard(self):
        with ShardRouter(n_shards=3, n_workers=1) as router:
            router.create_dataset("w", BASE)
            job = router.submit(None, CFG, dataset_id="w")
            assert job.wait(30.0)
            assert job.shard == router.dataset_home("w")
            assert job.result.itemsets == oracle(BASE)
            router.append_dataset("w", DELTA)
            job2 = router.submit(None, CFG, dataset_id="w")
            assert job2.wait(30.0)
            assert job2.shard == router.dataset_home("w")
            assert job2.result.itemsets == oracle(BASE + DELTA)

    def test_unknown_dataset_through_router(self):
        with ShardRouter(n_shards=2, n_workers=1) as router:
            with pytest.raises(ApiError) as err:
                router.dataset_info("nope")
            assert err.value.code == "unknown_dataset"


class TestHttpDatasets:
    @pytest.fixture(scope="class")
    def server(self):
        with MiningServer(port=0, n_workers=2) as srv:
            yield srv

    def test_full_lifecycle_over_http(self, server):
        client = HttpClient(server.url)
        info = client.create_dataset("http-w", BASE)
        assert info["version"] == 1
        assert info["fingerprint"] == dataset_fingerprint(BASE)
        first = client.wait(
            client.submit(None, CFG, dataset="http-w")["job_id"], timeout=60
        )
        assert first["state"] == "done"
        assert first["dataset_id"] == "http-w" and first["dataset_version"] == 1
        assert client.result(first["job_id"]) == oracle(BASE)

        info = client.append_dataset("http-w", DELTA, expected_version=1)
        assert info["version"] == 2 and info["invalidated_results"] >= 1
        assert client.dataset_info("http-w")["n_transactions"] == len(BASE) + len(
            DELTA
        )
        post = client.wait(
            client.submit(None, CFG, dataset="http-w")["job_id"], timeout=60
        )
        assert post["via"] == "run"  # the stale cache entry is gone
        assert client.result(post["job_id"]) == oracle(BASE + DELTA)

    def test_http_error_codes_are_structured(self, server):
        """Satellite: HttpClient surfaces the JSON error body as an
        ApiError with the server's status and code, not a bare HTTPError."""
        client = HttpClient(server.url)
        with pytest.raises(ApiError) as err:
            client.dataset_info("never-created")
        assert err.value.status == 404 and err.value.code == "unknown_dataset"

        client.create_dataset("http-dup", BASE)
        with pytest.raises(ApiError) as err:
            client.create_dataset("http-dup", BASE)
        assert err.value.status == 409 and err.value.code == "dataset_exists"
        with pytest.raises(ApiError) as err:
            client.append_dataset("http-dup", DELTA, expected_version=7)
        assert err.value.status == 409 and err.value.code == "version_conflict"
        with pytest.raises(ApiError) as err:
            client.submit(BASE, {"min_support": 0.5, "bogus_knob": 1})
        assert err.value.status == 400 and err.value.code == "bad_request"

    def test_submit_requires_exactly_one_source(self, server):
        client = HttpClient(server.url)
        # neither transactions nor dataset (raw body: the typed client
        # already refuses to build this request)
        with pytest.raises(ApiError) as err:
            client._request("POST", "/jobs", {"config": {"min_support": 0.5}})
        assert err.value.status == 400 and err.value.code == "bad_request"
        client.create_dataset("http-both", BASE)
        with pytest.raises(ApiError) as err:
            client._request(
                "POST",
                "/jobs",
                {
                    "config": {"min_support": 0.5},
                    "transactions": [list(t) for t in BASE],
                    "dataset": "http-both",
                },
            )
        assert err.value.status == 400 and err.value.code == "bad_request"
