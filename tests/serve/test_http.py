"""HTTP front-end: endpoints, error codes, client round-trips, CLI wiring."""

import threading

import pytest

from repro.core.api import mine_frequent_itemsets
from repro.core.registry import MiningConfig
from repro.datasets import mushroom_like
from repro.serve import HttpClient, MiningServer, ServeError
from repro.serve.http import config_from_dict, itemsets_from_payload, result_payload

TXNS = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]]
CFG = MiningConfig(min_support=0.4, backend="serial")


@pytest.fixture(scope="module")
def server():
    with MiningServer(port=0, n_workers=2, result_ttl_s=60.0) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return HttpClient(server.url, poll_interval_s=0.01)


class TestConfigFromDict:
    def test_builds_config(self):
        cfg = config_from_dict({"min_support": 0.3, "algorithm": "eclat"})
        assert cfg == MiningConfig(min_support=0.3, algorithm="eclat")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="unknown config field"):
            config_from_dict({"min_support": 0.3, "supprot": 0.2})

    def test_requires_min_support(self):
        with pytest.raises(ServeError, match="min_support"):
            config_from_dict({"algorithm": "eclat"})

    def test_rejects_non_object(self):
        with pytest.raises(ServeError, match="must be an object"):
            config_from_dict([1, 2])


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok" and payload["workers"] == 2

    def test_submit_status_result_round_trip(self, client):
        snapshot = client.submit(TXNS, CFG)
        assert snapshot["job_id"].startswith("job-")
        final = client.wait(snapshot["job_id"], timeout=30.0)
        assert final["state"] == "done"
        itemsets = client.result(final["job_id"])
        assert itemsets == mine_frequent_itemsets(TXNS, config=CFG).itemsets

    def test_result_conflict_while_pending(self, client, server):
        # a job that never runs (blocked behind nothing) finishes fast, so
        # probe the 409 with a job that is already terminal-but-not-done
        snapshot = client.submit(TXNS, CFG, timeout_s=30.0)
        client.wait(snapshot["job_id"], timeout=30.0)
        cancelled = client.submit(
            [[9, 8], [8, 7]], MiningConfig(min_support=0.9, backend="serial"),
        )
        # cancel may race completion; either way /results must 409 or 200
        client.cancel(cancelled["job_id"])
        final = client.wait(cancelled["job_id"], timeout=30.0)
        if final["state"] != "done":
            with pytest.raises(ServeError, match="409"):
                client.result(final["job_id"])

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client.status("job-999999")
        with pytest.raises(ServeError, match="404"):
            client.result("job-999999")

    def test_bad_submit_payloads_are_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client._request("POST", "/jobs", {"config": {"min_support": 0.4}})
        with pytest.raises(ServeError, match="400"):
            client._request("POST", "/jobs", {"transactions": TXNS, "config": {}})
        with pytest.raises(ServeError, match="400"):
            client.submit(TXNS, {"min_support": 0.4, "algorithm": "nope"})

    def test_type_invalid_payloads_are_400_not_connection_abort(self, client):
        # valid JSON with wrong field types must come back as a clean 400,
        # not an uncaught TypeError that aborts the connection server-side
        with pytest.raises(ServeError, match="400"):
            client._request(
                "POST", "/jobs",
                {"transactions": TXNS, "config": {"min_support": "0.4"}},
            )
        with pytest.raises(ServeError, match="400"):
            client._request(
                "POST", "/jobs",
                {"transactions": TXNS, "config": {"min_support": 0.4},
                 "priority": "high"},
            )
        with pytest.raises(ServeError, match="400"):
            # non-iterable transaction elements blow up during fingerprinting
            client._request(
                "POST", "/jobs",
                {"transactions": [1, 2], "config": {"min_support": 0.4}},
            )

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client._request("GET", "/nope")
        with pytest.raises(ServeError, match="404"):
            client._request("POST", "/nope", {})

    def test_metrics_exposes_queue_states_and_hit_rates(self, client):
        client.mine(TXNS, CFG, timeout=30.0)  # memoized or run — either way counted
        m = client.metrics()
        assert m["queue_depth"] >= 0
        assert set(m["jobs_by_state"]) == {
            "pending", "running", "done", "failed", "cancelled", "timed_out"
        }
        assert "hit_rate" in m["dataset_cache"]
        assert "hit_rate" in m["result_cache"]
        assert any("state" in j for j in m["recent_jobs"])

    def test_memoized_submit_returns_200_done(self, client):
        client.mine(TXNS, CFG, timeout=30.0)
        snapshot = client.submit(TXNS, CFG)
        assert snapshot["state"] == "done" and snapshot["via"] == "memoized"


class TestConcurrentHttp:
    def test_eight_concurrent_http_jobs_match_direct(self, client):
        ds = mushroom_like(scale=0.02, seed=9)
        configs = [
            MiningConfig(min_support=s, algorithm=a, backend="serial")
            for s in (0.5, 0.6, 0.7, 0.8)
            for a in ("yafim", "apriori")
        ]
        direct = {
            c.cache_key(): mine_frequent_itemsets(ds.transactions, config=c).itemsets
            for c in configs
        }
        mined = {}

        def run_one(cfg):
            mined[cfg.cache_key()] = client.mine(ds.transactions, cfg, timeout=120.0)

        threads = [threading.Thread(target=run_one, args=(c,)) for c in configs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(mined) == 8
        for key, itemsets in mined.items():
            assert itemsets == direct[key]


class TestPayloadHelpers:
    def test_result_payload_round_trip(self):
        from repro.serve import LocalClient, MiningService

        with MiningService(n_workers=1) as svc:
            job = svc.submit(TXNS, CFG)
            job.wait(30.0)
            payload = result_payload(job)
            assert payload["num_itemsets"] == job.result.num_itemsets
            assert itemsets_from_payload(payload) == job.result.itemsets
            LocalClient(svc).result(job.job_id)  # same itemsets via client
