"""HTTP front-end: endpoints, error codes, client round-trips, CLI wiring."""

import threading

import pytest

from repro.core.api import mine_frequent_itemsets
from repro.core.registry import MiningConfig
from repro.datasets import mushroom_like
from repro.serve import HttpClient, MiningServer, ServeError
from repro.serve.http import config_from_dict, itemsets_from_payload, result_payload

TXNS = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]]
CFG = MiningConfig(min_support=0.4, backend="serial")


@pytest.fixture(scope="module")
def server():
    with MiningServer(port=0, n_workers=2, result_ttl_s=60.0) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return HttpClient(server.url, poll_interval_s=0.01)


class TestConfigFromDict:
    def test_builds_config(self):
        cfg = config_from_dict({"min_support": 0.3, "algorithm": "eclat"})
        assert cfg == MiningConfig(min_support=0.3, algorithm="eclat")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="unknown config field"):
            config_from_dict({"min_support": 0.3, "supprot": 0.2})

    def test_requires_min_support(self):
        with pytest.raises(ServeError, match="min_support"):
            config_from_dict({"algorithm": "eclat"})

    def test_rejects_non_object(self):
        with pytest.raises(ServeError, match="must be an object"):
            config_from_dict([1, 2])


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok" and payload["workers"] == 2

    def test_submit_status_result_round_trip(self, client):
        snapshot = client.submit(TXNS, CFG)
        assert snapshot["job_id"].startswith("job-")
        final = client.wait(snapshot["job_id"], timeout=30.0)
        assert final["state"] == "done"
        itemsets = client.result(final["job_id"])
        assert itemsets == mine_frequent_itemsets(TXNS, config=CFG).itemsets

    def test_result_conflict_while_pending(self, client, server):
        # a job that never runs (blocked behind nothing) finishes fast, so
        # probe the 409 with a job that is already terminal-but-not-done
        snapshot = client.submit(TXNS, CFG, timeout_s=30.0)
        client.wait(snapshot["job_id"], timeout=30.0)
        cancelled = client.submit(
            [[9, 8], [8, 7]], MiningConfig(min_support=0.9, backend="serial"),
        )
        # cancel may race completion; either way /results must 409 or 200
        client.cancel(cancelled["job_id"])
        final = client.wait(cancelled["job_id"], timeout=30.0)
        if final["state"] != "done":
            with pytest.raises(ServeError, match="409"):
                client.result(final["job_id"])

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client.status("job-999999")
        with pytest.raises(ServeError, match="404"):
            client.result("job-999999")

    def test_bad_submit_payloads_are_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client._request("POST", "/jobs", {"config": {"min_support": 0.4}})
        with pytest.raises(ServeError, match="400"):
            client._request("POST", "/jobs", {"transactions": TXNS, "config": {}})
        with pytest.raises(ServeError, match="400"):
            client.submit(TXNS, {"min_support": 0.4, "algorithm": "nope"})

    def test_type_invalid_payloads_are_400_not_connection_abort(self, client):
        # valid JSON with wrong field types must come back as a clean 400,
        # not an uncaught TypeError that aborts the connection server-side
        with pytest.raises(ServeError, match="400"):
            client._request(
                "POST", "/jobs",
                {"transactions": TXNS, "config": {"min_support": "0.4"}},
            )
        with pytest.raises(ServeError, match="400"):
            client._request(
                "POST", "/jobs",
                {"transactions": TXNS, "config": {"min_support": 0.4},
                 "priority": "high"},
            )
        with pytest.raises(ServeError, match="400"):
            # non-iterable transaction elements blow up during fingerprinting
            client._request(
                "POST", "/jobs",
                {"transactions": [1, 2], "config": {"min_support": 0.4}},
            )

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client._request("GET", "/nope")
        with pytest.raises(ServeError, match="404"):
            client._request("POST", "/nope", {})

    def test_metrics_exposes_queue_states_and_hit_rates(self, client):
        client.mine(TXNS, CFG, timeout=30.0)  # memoized or run — either way counted
        m = client.metrics()
        assert m["queue_depth"] >= 0
        assert set(m["jobs_by_state"]) == {
            "pending", "running", "done", "failed", "cancelled", "timed_out"
        }
        assert "hit_rate" in m["dataset_cache"]
        assert "hit_rate" in m["result_cache"]
        assert any("state" in j for j in m["recent_jobs"])

    def test_memoized_submit_returns_200_done(self, client):
        client.mine(TXNS, CFG, timeout=30.0)
        snapshot = client.submit(TXNS, CFG)
        assert snapshot["state"] == "done" and snapshot["via"] == "memoized"


class TestConcurrentHttp:
    def test_eight_concurrent_http_jobs_match_direct(self, client):
        ds = mushroom_like(scale=0.02, seed=9)
        configs = [
            MiningConfig(min_support=s, algorithm=a, backend="serial")
            for s in (0.5, 0.6, 0.7, 0.8)
            for a in ("yafim", "apriori")
        ]
        direct = {
            c.cache_key(): mine_frequent_itemsets(ds.transactions, config=c).itemsets
            for c in configs
        }
        mined = {}

        def run_one(cfg):
            mined[cfg.cache_key()] = client.mine(ds.transactions, cfg, timeout=120.0)

        threads = [threading.Thread(target=run_one, args=(c,)) for c in configs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(mined) == 8
        for key, itemsets in mined.items():
            assert itemsets == direct[key]


class TestPayloadHelpers:
    def test_result_payload_round_trip(self):
        from repro.serve import LocalClient, MiningService

        with MiningService(n_workers=1) as svc:
            job = svc.submit(TXNS, CFG)
            job.wait(30.0)
            payload = result_payload(job)
            assert payload["num_itemsets"] == job.result.num_itemsets
            assert itemsets_from_payload(payload) == job.result.itemsets
            LocalClient(svc).result(job.job_id)  # same itemsets via client


class TestShardedServer:
    """MiningServer with shards>1 / planner: the router behind HTTP."""

    @pytest.fixture(scope="class")
    def sharded(self):
        with MiningServer(port=0, shards=2, n_workers=1, planner=True) as srv:
            yield srv

    @pytest.fixture(scope="class")
    def sharded_client(self, sharded):
        return HttpClient(sharded.url, poll_interval_s=0.01)

    def test_healthz_reports_shards(self, sharded_client):
        h = sharded_client.healthz()
        assert h["shards"] == 2 and h["workers"] == 2

    def test_tenant_round_trips(self, sharded_client):
        snap = sharded_client.submit(TXNS, CFG, tenant="acme")
        final = sharded_client.wait(snap["job_id"], timeout=30.0)
        assert final["tenant"] == "acme"
        assert final["state"] == "done"

    def test_planned_knobs_in_snapshot(self, sharded_client):
        # all-default engine knobs -> nothing pinned, planner fills them
        snap = sharded_client.submit(
            [[7, 8, 9], [7, 8], [8, 9]], MiningConfig(min_support=0.4)
        )
        final = sharded_client.wait(snap["job_id"], timeout=30.0)
        assert final["planned"] and "backend" in final["planned"]

    def test_pinned_freezes_default_valued_knob(self, sharded_client):
        snap = sharded_client.submit(
            [[4, 5, 6], [4, 5], [5, 6]],
            MiningConfig(min_support=0.4),  # all-default engine knobs
            pinned=["backend", "num_partitions", "candidate_store"],
        )
        final = sharded_client.wait(snap["job_id"], timeout=30.0)
        assert final["planned"] == {}

    def test_jobs_route_to_distinct_shards(self, sharded, sharded_client):
        router = sharded.service  # in-process: probe the ring directly
        wanted, seed = {}, 0
        while len(wanted) < 2:
            seed += 1
            txns = [[seed, seed + 1], [seed, seed + 2], [seed + 3000]]
            wanted.setdefault(router.home_shard(txns), txns)
        shards_seen = set()
        for txns in wanted.values():
            snap = sharded_client.submit(txns, CFG)
            final = sharded_client.wait(snap["job_id"], timeout=30.0)
            shards_seen.add(final["shard"])
        assert shards_seen == {"shard-0", "shard-1"}

    def test_metrics_exposes_router_and_per_shard_blocks(self, sharded_client):
        m = sharded_client.metrics()
        assert {"router", "ring", "shards", "planner"} <= set(m)
        assert len(m["shards"]) == 2
        assert {"jobs_home", "service"} <= set(m["shards"][0])
        assert "latency" in m["shards"][0]["service"]

    def test_unknown_top_level_field_is_400(self, sharded_client):
        with pytest.raises(ServeError, match="unknown field.*priorty"):
            sharded_client._request(
                "POST", "/jobs",
                {"transactions": TXNS, "config": {"min_support": 0.4},
                 "priorty": 3},
            )


class TestAdmissionOverHttp:
    def test_429_with_retry_after_and_mine_recovers(self):
        import threading
        import time

        from repro.core.registry import register_algorithm, unregister_algorithm
        from repro.core.results import MiningRunResult
        from repro.serve import RejectedError

        release = threading.Event()

        def gated(txns, config):
            release.wait(15.0)
            out = MiningRunResult(
                algorithm=config.algorithm,
                min_support=config.min_support,
                n_transactions=len(txns),
            )
            out.itemsets = {(1,): 1}
            return out

        register_algorithm("http_gate_algo", gated, overwrite=True)
        try:
            with MiningServer(port=0, n_workers=1, queue_limit=1) as srv:
                client = HttpClient(srv.url, poll_interval_s=0.01)
                gate_cfg = {"min_support": 0.4, "algorithm": "http_gate_algo"}
                first = client.submit(TXNS, gate_cfg)
                deadline = time.monotonic() + 10.0
                while client.status(first["job_id"])["state"] != "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                fill_cfg = {"min_support": 0.4, "algorithm": "http_gate_algo",
                            "options": {"tag": "fill"}}
                client.submit(TXNS, fill_cfg)
                over_cfg = {"min_support": 0.4, "algorithm": "http_gate_algo",
                            "options": {"tag": "over"}}
                with pytest.raises(RejectedError) as exc:
                    client.submit(TXNS, over_cfg)
                err = exc.value
                assert err.retry_after_s > 0
                assert err.queue_depth == 1 and err.queue_limit == 1
                # mine() backs off on 429 and resubmits once space frees up
                done = threading.Event()
                mined = {}

                def mine_over():
                    mined["itemsets"] = client.mine(TXNS, over_cfg, timeout=30.0)
                    done.set()

                t = threading.Thread(target=mine_over)
                t.start()
                time.sleep(0.2)  # let it hit at least one 429
                release.set()
                assert done.wait(30.0), "mine() never recovered from 429"
                t.join(5.0)
                assert mined["itemsets"] == {(1,): 1}
        finally:
            release.set()
            unregister_algorithm("http_gate_algo")


class TestClientConnectRetry:
    def test_gives_up_after_retries(self):
        import time

        client = HttpClient(
            "http://127.0.0.1:9",  # discard port: connection refused
            connect_retries=2, retry_backoff_s=0.02,
        )
        t0 = time.monotonic()
        with pytest.raises(ServeError, match="cannot reach"):
            client.healthz()
        # two backoffs happened (0.02 + 0.04) before giving up
        assert time.monotonic() - t0 >= 0.06

    def test_retries_through_server_startup(self):
        import socket
        import threading
        import time

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        started = {}

        def late_start():
            time.sleep(0.3)
            started["server"] = MiningServer(port=port, n_workers=1).start()

        t = threading.Thread(target=late_start)
        t.start()
        try:
            client = HttpClient(
                f"http://127.0.0.1:{port}",
                connect_retries=6, retry_backoff_s=0.1,
            )
            assert client.healthz()["status"] == "ok"  # refused, then served
        finally:
            t.join(5.0)
            if "server" in started:
                started["server"].close()
