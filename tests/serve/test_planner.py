"""Cost-based planner: stats, cost model shape, knob choice, calibration."""

import random

import pytest

from repro.core.registry import MiningConfig
from repro.serve import CostPlanner, DatasetStats
from repro.serve.planner import PLANNABLE_FIELDS


def make_txns(n=50, width=5, vocab=40, seed=0):
    rng = random.Random(seed)
    return [
        [f"i{rng.randrange(vocab)}" for _ in range(width)] for _ in range(n)
    ]


SPARSE = make_txns(n=80, width=4, vocab=200)
DENSE = [[f"i{j}" for j in range(30)] for _ in range(80)]  # width == vocab


class TestDatasetStats:
    def test_from_transactions(self):
        stats = DatasetStats.from_transactions([[1, 2, 3], [1, 2], [4]])
        assert stats.n_transactions == 3
        assert stats.avg_width == pytest.approx(2.0)
        assert stats.distinct_items == 4
        assert stats.total_items == 6

    def test_density_dense_vs_sparse(self):
        dense = DatasetStats.from_transactions(DENSE)
        sparse = DatasetStats.from_transactions(SPARSE)
        assert dense.density == pytest.approx(1.0)
        assert sparse.density < 0.1

    def test_empty_dataset(self):
        stats = DatasetStats.from_transactions([])
        assert stats.n_transactions == 0 and stats.density == 0.0

    def test_sample_cap_bounds_vocab_scan(self):
        txns = [[i] for i in range(100)]
        stats = DatasetStats.from_transactions(txns, sample_cap=10)
        assert stats.n_transactions == 100
        assert stats.distinct_items == 10  # prefix sample only


class TestCostModel:
    def test_lower_support_costs_more(self):
        planner = CostPlanner()
        stats = DatasetStats.from_transactions(SPARSE)
        hi = planner.work_units(stats, MiningConfig(min_support=0.5))
        lo = planner.work_units(stats, MiningConfig(min_support=0.01))
        assert lo > hi

    def test_more_data_costs_more(self):
        planner = CostPlanner()
        small = DatasetStats(100, 5.0, 50)
        big = DatasetStats(10_000, 5.0, 50)
        cfg = MiningConfig(min_support=0.1)
        assert planner.work_units(big, cfg) > planner.work_units(small, cfg)

    def test_denser_data_costs_more(self):
        planner = CostPlanner()
        cfg = MiningConfig(min_support=0.1)
        sparse = DatasetStats(1000, 5.0, 500)
        dense = DatasetStats(1000, 5.0, 10)
        assert planner.work_units(dense, cfg) > planner.work_units(sparse, cfg)

    def test_estimate_seconds_positive_and_monotone(self):
        planner = CostPlanner()
        stats = DatasetStats.from_transactions(SPARSE)
        est_hi = planner.estimate_seconds(stats, MiningConfig(min_support=0.5))
        est_lo = planner.estimate_seconds(stats, MiningConfig(min_support=0.01))
        assert 0 < est_hi < est_lo

    def test_stats_memoized_by_fingerprint(self):
        planner = CostPlanner()
        s1 = planner.stats_for(SPARSE)
        s2 = planner.stats_for(SPARSE)
        assert s1 is s2
        assert planner.stats()["stats_cached"] == 1


class TestPlanning:
    def test_small_job_goes_serial(self):
        planner = CostPlanner()
        cfg, decision = planner.plan([[1, 2], [1, 3]], MiningConfig(min_support=0.5))
        assert cfg.backend == "serial"
        assert cfg.num_partitions == 1
        assert decision.chosen["backend"] == "serial"

    def test_large_job_gets_executor_backend(self):
        planner = CostPlanner(serial_cutoff_s=1e-12)
        cfg, decision = planner.plan(SPARSE, MiningConfig(min_support=0.05))
        assert cfg.backend in ("threads", "processes")
        assert cfg.num_partitions >= 1

    def test_huge_estimate_picks_processes(self):
        planner = CostPlanner()
        stats = DatasetStats(5_000_000, 40.0, 50)
        planner._stats["fp"] = stats  # seed the memo; txns never scanned
        cfg, decision = planner.plan(
            [[1]], MiningConfig(min_support=0.001), fingerprint="fp"
        )
        assert cfg.backend == "processes"

    def test_dense_dataset_gets_bitmap_store(self):
        planner = CostPlanner()
        cfg, decision = planner.plan(DENSE, MiningConfig(min_support=0.5))
        assert cfg.candidate_store == "bitmap"

    def test_sparse_dataset_keeps_hashtree(self):
        planner = CostPlanner()
        cfg, _ = planner.plan(SPARSE, MiningConfig(min_support=0.5))
        assert cfg.candidate_store == "hashtree"

    def test_non_default_values_are_pinned(self):
        planner = CostPlanner()
        cfg_in = MiningConfig(min_support=0.5, backend="processes", num_partitions=7)
        cfg, decision = planner.plan(DENSE, cfg_in)
        # explicit caller choices survive planning untouched
        assert cfg.backend == "processes" and cfg.num_partitions == 7
        assert {"backend", "num_partitions"} <= set(decision.pinned)
        # unpinned knobs are still planned
        assert cfg.candidate_store == "bitmap"

    def test_explicit_pin_freezes_default_value(self):
        planner = CostPlanner()
        cfg, decision = planner.plan(
            DENSE, MiningConfig(min_support=0.5), pinned=("candidate_store",)
        )
        assert cfg.candidate_store == "hashtree"  # pinned at its default
        assert "candidate_store" in decision.pinned
        assert cfg.backend == "serial"  # others still planned

    def test_pinned_ignores_unknown_names(self):
        planner = CostPlanner()
        _, decision = planner.plan(
            DENSE, MiningConfig(min_support=0.5), pinned=("min_support", "nope")
        )
        assert not set(decision.pinned) - set(PLANNABLE_FIELDS)

    def test_non_engine_algorithm_passes_through(self):
        planner = CostPlanner()
        cfg_in = MiningConfig(min_support=0.5, algorithm="apriori")
        cfg, decision = planner.plan(DENSE, cfg_in)
        assert cfg is cfg_in
        assert decision.chosen == {}
        assert "does not run on the engine" in decision.reason

    def test_decision_snapshot_shape(self):
        planner = CostPlanner()
        _, decision = planner.plan(SPARSE, MiningConfig(min_support=0.4))
        snap = decision.snapshot()
        assert {"estimated_seconds", "chosen", "pinned", "reason"} <= set(snap)


class TestCalibration:
    def test_observe_moves_unit_cost_toward_actual(self):
        planner = CostPlanner(unit_cost_s=1e-9)
        _, decision = planner.plan(SPARSE, MiningConfig(min_support=0.1))
        assert decision.work_units > 0
        slow_unit = 1e-3
        before = planner.unit_cost_s
        planner.observe(decision, decision.work_units * slow_unit)
        after = planner.unit_cost_s
        assert before < after < slow_unit  # EWMA: moved toward, not jumped to
        assert planner.observations == 1

    def test_observe_converges(self):
        planner = CostPlanner(unit_cost_s=1e-9)
        _, decision = planner.plan(SPARSE, MiningConfig(min_support=0.1))
        true_unit = 5e-6
        for _ in range(40):
            planner.observe(decision, decision.work_units * true_unit)
        assert planner.unit_cost_s == pytest.approx(true_unit, rel=0.05)

    def test_observe_ignores_degenerate_samples(self):
        planner = CostPlanner()
        _, decision = planner.plan(SPARSE, MiningConfig(min_support=0.1))
        planner.observe(decision, 0.0)
        planner.observe(decision, -1.0)
        assert planner.observations == 0
