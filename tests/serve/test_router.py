"""ShardRouter: affinity, spill, shedding, delegation, planner wiring."""

import threading
import time

import pytest

from repro.core.registry import (
    MiningConfig,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.results import MiningRunResult
from repro.datasets import mushroom_like
from repro.serve import (
    CostPlanner,
    JobState,
    LocalClient,
    RejectedError,
    ServeError,
    ShardRouter,
)

CFG = MiningConfig(min_support=0.4, backend="serial")


def _result(txns, config) -> MiningRunResult:
    out = MiningRunResult(
        algorithm=config.algorithm,
        min_support=config.min_support,
        n_transactions=len(txns),
    )
    out.itemsets = {(1,): 1}
    return out


def wait_running(job, timeout: float = 10.0) -> None:
    """Spin until a worker has picked the job up (it left the queue)."""
    deadline = time.monotonic() + timeout
    while job.state is not JobState.RUNNING:
        assert time.monotonic() < deadline, f"job never ran: {job.state}"
        time.sleep(0.005)


def datasets_by_home(router: ShardRouter, per_shard: int = 1) -> dict:
    """Distinct tiny datasets grouped by home shard — lets a test aim a
    submission at a specific shard by picking from the right bucket."""
    buckets: dict[str, list] = {s.name: [] for s in router.shards}
    seed = 0
    while any(len(v) < per_shard for v in buckets.values()):
        seed += 1
        txns = [[seed, seed + 1, seed + 2], [seed, seed + 1], [seed + 9000]]
        home = router.home_shard(txns)
        if len(buckets[home]) < per_shard:
            buckets[home].append(txns)
        assert seed < 10_000, "could not cover every shard"
    return buckets


@pytest.fixture
def gated_algo():
    """A blocking algorithm: jobs hold their worker until released."""
    release = threading.Event()

    def gated(txns, config):
        release.wait(15.0)
        return _result(txns, config)

    register_algorithm("router_gate_algo", gated, overwrite=True)
    yield "router_gate_algo", release
    release.set()
    unregister_algorithm("router_gate_algo")


class TestRouting:
    def test_home_shard_deterministic_and_honoured(self):
        with ShardRouter(n_shards=3, n_workers=1) as router:
            buckets = datasets_by_home(router)
            for name, (txns,) in buckets.items():
                job = router.submit(txns, CFG)
                assert job.shard == name == router.home_shard(txns)
                assert router.wait(job.job_id, 30).state is JobState.DONE

    def test_affinity_makes_resubmits_memoized(self):
        with ShardRouter(n_shards=4, n_workers=1) as router:
            ds = mushroom_like(scale=0.02, seed=3).transactions
            first = router.submit(ds, CFG)
            router.wait(first.job_id, 30)
            again = router.submit(ds, CFG)
            assert again.shard == first.shard
            assert again.via == "memoized"

    def test_all_shards_usable_via_local_client(self):
        with ShardRouter(n_shards=2, n_workers=1) as router:
            client = LocalClient(router)
            buckets = datasets_by_home(router)
            for (txns,) in buckets.values():
                result = client.mine(txns, CFG, timeout=30)
                assert result.num_itemsets > 0

    def test_constructor_validation(self):
        with pytest.raises(ServeError, match="n_shards"):
            ShardRouter(n_shards=0)
        with pytest.raises(ServeError, match="shed_at"):
            ShardRouter(n_shards=1, shed_at=1.5)


class TestSpill:
    def test_saturated_home_spills_to_next_ring_node(self, gated_algo):
        algo, release = gated_algo
        gate_cfg = MiningConfig(min_support=0.4, algorithm=algo)
        with ShardRouter(n_shards=2, n_workers=1, queue_limit=1) as router:
            buckets = datasets_by_home(router, per_shard=3)
            (home_name, txns_list), *_ = buckets.items()
            # occupy the home shard's worker, then fill its queue slot
            running = router.submit(txns_list[0], gate_cfg)
            wait_running(running)
            queued = router.submit(
                txns_list[1], MiningConfig(min_support=0.4, algorithm=algo,
                                           options={"tag": "fill"})
            )
            assert running.shard == queued.shard == home_name
            # third dataset homed there must spill to the other shard
            spilled = router.submit(txns_list[2], CFG)
            assert spilled.shard != home_name
            assert router.metrics()["router"]["jobs_spilled"] == 1
            release.set()
            for job in (running, queued, spilled):
                assert router.wait(job.job_id, 30).is_terminal

    def test_spill_false_rejects_instead(self, gated_algo):
        algo, release = gated_algo
        gate_cfg = MiningConfig(min_support=0.4, algorithm=algo)
        with ShardRouter(n_shards=2, n_workers=1, queue_limit=1,
                         spill=False) as router:
            buckets = datasets_by_home(router, per_shard=3)
            (home_name, txns_list), *_ = buckets.items()
            wait_running(router.submit(txns_list[0], gate_cfg))
            router.submit(
                txns_list[1], MiningConfig(min_support=0.4, algorithm=algo,
                                           options={"tag": "fill"})
            )
            with pytest.raises(RejectedError) as exc:
                router.submit(txns_list[2], CFG)
            assert exc.value.scope == "router"
            release.set()

    def test_all_shards_saturated_raises_router_rejection(self, gated_algo):
        algo, release = gated_algo
        with ShardRouter(n_shards=2, n_workers=1, queue_limit=1) as router:
            buckets = datasets_by_home(router, per_shard=2)
            for txns_list in buckets.values():
                wait_running(router.submit(
                    txns_list[0], MiningConfig(min_support=0.4, algorithm=algo)
                ))
                router.submit(
                    txns_list[1],
                    MiningConfig(min_support=0.4, algorithm=algo,
                                 options={"tag": "fill"}),
                )
            with pytest.raises(RejectedError) as exc:
                router.submit([[777, 778]], CFG)
            err = exc.value
            assert err.scope == "router"
            assert err.retry_after_s > 0
            assert router.metrics()["router"]["jobs_rejected"] == 1
            release.set()


class TestShedding:
    def test_low_priority_shed_when_hot(self, gated_algo):
        algo, release = gated_algo
        with ShardRouter(n_shards=1, n_workers=1, queue_limit=2,
                         shed_priority=0, shed_at=0.5) as router:
            wait_running(
                router.submit([[1, 2]], MiningConfig(min_support=0.4, algorithm=algo))
            )
            router.submit(
                [[1, 2]], MiningConfig(min_support=0.4, algorithm=algo,
                                       options={"tag": "fill"})
            )  # queue now 1/2 full -> at shed_at
            with pytest.raises(RejectedError) as exc:
                router.submit([[5, 6]], CFG, priority=5)
            assert exc.value.scope == "router"
            assert "shed" in str(exc.value)
            assert router.metrics()["router"]["jobs_shed"] == 1
            # important traffic still admitted
            ok = router.submit([[5, 6]], CFG, priority=0)
            release.set()
            assert router.wait(ok.job_id, 30).state is JobState.DONE

    def test_shedding_off_by_default(self, gated_algo):
        algo, release = gated_algo
        with ShardRouter(n_shards=1, n_workers=1, queue_limit=3) as router:
            router.submit([[1, 2]], MiningConfig(min_support=0.4, algorithm=algo))
            job = router.submit([[5, 6]], CFG, priority=99)
            release.set()
            assert router.wait(job.job_id, 30).state is JobState.DONE


class TestDelegation:
    def test_get_wait_cancel_route_to_owning_shard(self, gated_algo):
        algo, release = gated_algo
        with ShardRouter(n_shards=3, n_workers=1) as router:
            job = router.submit([[1, 2]], MiningConfig(min_support=0.4, algorithm=algo))
            assert router.get(job.job_id) is job
            assert router.queue_depth() >= 0
            assert router.cancel(job.job_id) is True
            assert router.wait(job.job_id, 10).state is JobState.CANCELLED
            release.set()

    def test_unknown_job_raises(self):
        with ShardRouter(n_shards=2, n_workers=1) as router:
            with pytest.raises(ServeError, match="unknown job"):
                router.get("job-404")

    def test_shutdown_rejects_new_submits(self):
        router = ShardRouter(n_shards=2, n_workers=1)
        router.shutdown()
        with pytest.raises(ServeError, match="shut down"):
            router.submit([[1, 2]], CFG)
        router.shutdown()  # idempotent


class TestMetricsAndHealth:
    def test_metrics_shape(self):
        with ShardRouter(n_shards=2, n_workers=1,
                         planner=CostPlanner()) as router:
            job = router.submit([[1, 2], [1, 3], [1, 2]], CFG)
            router.wait(job.job_id, 30)
            m = router.metrics()
            assert {"router", "ring", "shards", "planner"} <= set(m)
            assert m["router"]["shards"] == 2
            assert m["router"]["jobs_routed"] == 1
            assert m["ring"]["nodes"] == ["shard-0", "shard-1"]
            assert len(m["shards"]) == 2
            per_shard = m["shards"][0]
            assert {"name", "jobs_home", "queue_depth", "service"} <= set(per_shard)
            assert "result_cache" in per_shard["service"]

    def test_healthz_counts_all_workers(self):
        with ShardRouter(n_shards=3, n_workers=2) as router:
            h = router.healthz()
            assert h == {"status": "ok", "shards": 3, "workers": 6}


class TestPlannerWiring:
    def test_jobs_carry_plan_and_calibration_flows_back(self):
        planner = CostPlanner()
        with ShardRouter(n_shards=2, n_workers=1, planner=planner) as router:
            ds = mushroom_like(scale=0.02, seed=4).transactions
            job = router.submit(ds, MiningConfig(min_support=0.4))
            final = router.wait(job.job_id, 30)
            assert final.state is JobState.DONE
            assert final.planned is not None and "backend" in final.planned
            deadline = time.monotonic() + 5.0
            while planner.observations == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert planner.observations == 1
            assert planner.stats()["plans"] == 1

    def test_memoized_job_does_not_calibrate(self):
        planner = CostPlanner()
        with ShardRouter(n_shards=1, n_workers=1, planner=planner) as router:
            ds = [[1, 2, 3], [1, 2], [2, 3]]
            first = router.submit(ds, CFG)
            router.wait(first.job_id, 30)
            again = router.submit(ds, CFG)
            assert again.via == "memoized"
            time.sleep(0.1)
            assert planner.observations <= 1  # only the real run observed

    def test_pinned_knobs_survive_routing(self):
        planner = CostPlanner()
        with ShardRouter(n_shards=1, n_workers=1, planner=planner) as router:
            cfg = MiningConfig(min_support=0.4, backend="processes")
            job = router.submit([[1, 2], [1, 3]], cfg, pinned=("candidate_store",))
            final = router.wait(job.job_id, 30)
            assert final.state is JobState.DONE
            assert final.request.config.backend == "processes"
            assert final.request.config.candidate_store == "hashtree"
