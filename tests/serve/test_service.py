"""MiningService lifecycle: queueing, caching, coalescing, cancel/timeout/retry."""

import threading
import time

import pytest

from repro.common.errors import MiningError
from repro.core.api import mine_frequent_itemsets
from repro.core.registry import (
    MiningConfig,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.results import MiningRunResult
from repro.datasets import mushroom_like
from repro.engine.faults import InjectedTaskFailure
from repro.serve import JobState, LocalClient, MiningService, ServeError

TXNS = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]]
CFG = MiningConfig(min_support=0.4, backend="serial")


def _result(txns, config, n=1) -> MiningRunResult:
    out = MiningRunResult(
        algorithm=config.algorithm,
        min_support=config.min_support,
        n_transactions=len(txns),
    )
    out.itemsets = {(1,): n}
    return out


@pytest.fixture
def algo():
    """Register a throwaway algorithm; yields its name, cleans up after."""
    registered = []

    def _register(runner, name="probe_algo"):
        register_algorithm(name, runner, overwrite=True)
        registered.append(name)
        return name

    yield _register
    for name in registered:
        unregister_algorithm(name)


@pytest.fixture
def service():
    with MiningService(n_workers=1, result_ttl_s=60.0) as svc:
        yield svc


class TestSubmitAndRun:
    def test_single_job_matches_direct_call(self, service):
        job = service.submit(TXNS, CFG)
        assert job.wait(30.0)
        direct = mine_frequent_itemsets(TXNS, config=CFG)
        assert job.state is JobState.DONE
        assert job.result.itemsets == direct.itemsets
        assert job.attempts == 1 and job.via == "run"

    def test_unknown_algorithm_fails_fast(self, service):
        with pytest.raises(MiningError):
            service.submit(TXNS, MiningConfig(min_support=0.4, algorithm="nope"))

    def test_unknown_job_id(self, service):
        with pytest.raises(ServeError):
            service.get("job-does-not-exist")

    def test_memoized_resubmission(self, service):
        first = service.submit(TXNS, CFG)
        first.wait(30.0)
        again = service.submit(TXNS, CFG)
        assert again.state is JobState.DONE and again.via == "memoized"
        assert again.result.itemsets == first.result.itemsets
        assert service.results.hits == 1

    def test_engine_backed_algorithm_reuses_warm_context(self, service):
        cfg = MiningConfig(min_support=0.4, algorithm="yafim", backend="serial")
        service.submit(TXNS, cfg).wait(30.0)
        job = service.submit([[1, 2], [2, 3], [1, 2]], cfg)
        job.wait(30.0)
        assert job.state is JobState.DONE
        assert service.contexts.created == 1 and service.contexts.reused == 1
        # warm context still yields per-job observability
        assert job.result.engine_metrics is not None
        assert job.result.engine_metrics.n_jobs > 0

    def test_warm_context_does_not_accumulate_cached_blocks(self, service):
        # distinct supports defeat the result cache, so each job really
        # runs on the (reused) engine context; its cached transaction
        # partitions must not pile up across jobs
        for support in (0.3, 0.4, 0.5):
            cfg = MiningConfig(min_support=support, algorithm="yafim", backend="serial")
            job = service.submit(TXNS, cfg)
            assert job.wait(30.0) and job.state is JobState.DONE
        assert service.contexts.created == 1 and service.contexts.reused == 2
        idle = [c for pool in service.contexts._idle.values() for c in pool]
        assert idle
        assert all(c.block_manager.cached_block_count == 0 for c in idle)

    def test_priority_orders_queued_jobs(self, service, algo):
        release = threading.Event()
        order = []

        def blocker(txns, config):
            release.wait(10.0)
            return _result(txns, config)

        def recorder(txns, config):
            order.append(config.options["tag"])
            return _result(txns, config)

        blocker_name = algo(blocker, "blocker_algo")
        recorder_name = algo(recorder, "recorder_algo")
        first = service.submit(TXNS, MiningConfig(min_support=0.4, algorithm=blocker_name))
        deadline = time.monotonic() + 10.0
        while first.state is not JobState.RUNNING:  # wait for the worker to grab it
            assert time.monotonic() < deadline
            time.sleep(0.005)
        low = service.submit(
            TXNS,
            MiningConfig(min_support=0.4, algorithm=recorder_name, options={"tag": "low"}),
            priority=5,
        )
        high = service.submit(
            TXNS,
            MiningConfig(min_support=0.4, algorithm=recorder_name, options={"tag": "high"}),
            priority=-5,
        )
        assert service.queue_depth() == 2
        release.set()
        for job in (first, low, high):
            assert job.wait(30.0)
        assert order == ["high", "low"]


class TestCancellation:
    def test_cancel_queued_job(self, service, algo):
        release = threading.Event()
        name = algo(lambda t, c: (release.wait(10.0), _result(t, c))[1], "block_algo")
        running = service.submit(TXNS, MiningConfig(min_support=0.4, algorithm=name))
        queued = service.submit(TXNS, CFG)
        assert queued.state is JobState.PENDING
        assert service.cancel(queued.job_id) is True
        assert queued.state is JobState.CANCELLED
        assert queued.started_s is None  # never ran
        release.set()
        running.wait(30.0)

    def test_cancel_running_job(self, service, algo):
        started = threading.Event()

        def slow(txns, config):
            started.set()
            time.sleep(5.0)
            return _result(txns, config)

        name = algo(slow, "slow_algo")
        job = service.submit(TXNS, MiningConfig(min_support=0.4, algorithm=name))
        assert started.wait(10.0)
        t0 = time.monotonic()
        assert service.cancel(job.job_id) is True
        assert job.wait(10.0)
        assert job.state is JobState.CANCELLED
        assert time.monotonic() - t0 < 2.0  # did not wait out the sleep

    def test_cancel_terminal_job_is_noop(self, service):
        job = service.submit(TXNS, CFG)
        job.wait(30.0)
        assert service.cancel(job.job_id) is False
        assert job.state is JobState.DONE


class TestTimeout:
    def test_timeout_fires_mid_iteration(self, service, algo):
        def grinding(txns, config):
            for _ in range(200):  # ~4s of "iterations"
                time.sleep(0.02)
            return _result(txns, config)

        name = algo(grinding, "grind_algo")
        t0 = time.monotonic()
        job = service.submit(
            TXNS, MiningConfig(min_support=0.4, algorithm=name), timeout_s=0.2
        )
        assert job.wait(10.0)
        assert job.state is JobState.TIMED_OUT
        assert "timed out" in job.error
        assert time.monotonic() - t0 < 2.0
        # a timed-out run must not poison the result cache
        assert len(service.results) == 0

    def test_default_timeout_applies(self, algo):
        name = None
        with MiningService(n_workers=1, default_timeout_s=0.1) as svc:
            register_algorithm("snooze_algo", lambda t, c: time.sleep(5.0), overwrite=True)
            name = "snooze_algo"
            try:
                job = svc.submit(TXNS, MiningConfig(min_support=0.4, algorithm=name))
                assert job.wait(10.0)
                assert job.state is JobState.TIMED_OUT
            finally:
                unregister_algorithm(name)


class TestRetry:
    def test_retry_exhausts_budget_on_injected_fault(self, service, algo):
        calls = []

        def faulty(txns, config):
            calls.append(1)
            raise InjectedTaskFailure("injected fault from repro.engine.faults")

        name = algo(faulty, "faulty_algo")
        job = service.submit(
            TXNS,
            MiningConfig(min_support=0.4, algorithm=name),
            max_retries=2,
            retry_backoff_s=0.01,
        )
        assert job.wait(30.0)
        assert job.state is JobState.FAILED
        assert job.attempts == 3 and len(calls) == 3  # 1 try + 2 retries
        assert "transient failure after 3 attempt(s)" in job.error

    def test_transient_fault_recovers_within_budget(self, service, algo):
        calls = []

        def flaky(txns, config):
            calls.append(1)
            if len(calls) < 3:
                raise InjectedTaskFailure("flaky")
            return _result(txns, config)

        name = algo(flaky, "flaky_algo")
        job = service.submit(
            TXNS,
            MiningConfig(min_support=0.4, algorithm=name),
            max_retries=3,
            retry_backoff_s=0.01,
        )
        assert job.wait(30.0)
        assert job.state is JobState.DONE and job.attempts == 3

    def test_permanent_error_fails_without_retry(self, service, algo):
        calls = []

        def broken(txns, config):
            calls.append(1)
            raise ValueError("programming error")

        name = algo(broken, "broken_algo")
        job = service.submit(
            TXNS, MiningConfig(min_support=0.4, algorithm=name), max_retries=3
        )
        assert job.wait(30.0)
        assert job.state is JobState.FAILED
        assert len(calls) == 1
        assert "permanent" in job.error


class TestCoalescing:
    def test_identical_concurrent_submissions_coalesce(self, service, algo):
        release = threading.Event()
        calls = []

        def gated(txns, config):
            calls.append(1)
            release.wait(10.0)
            return _result(txns, config)

        name = algo(gated, "gated_algo")
        cfg = MiningConfig(min_support=0.4, algorithm=name)
        primary = service.submit(TXNS, cfg)
        follower = service.submit(TXNS, cfg)
        assert follower.via == "coalesced"
        assert follower.coalesced_with == primary.job_id
        release.set()
        assert primary.wait(30.0) and follower.wait(30.0)
        assert primary.state is JobState.DONE and follower.state is JobState.DONE
        assert follower.result is primary.result  # shared, not recomputed
        assert len(calls) == 1
        assert service.jobs_coalesced == 1

    def test_follower_promoted_when_primary_cancelled(self, service, algo):
        started = threading.Event()
        calls = []

        def gated(txns, config):
            calls.append(1)
            started.set()
            time.sleep(0.3)
            return _result(txns, config, n=len(calls))

        name = algo(gated, "promote_algo")
        cfg = MiningConfig(min_support=0.4, algorithm=name)
        primary = service.submit(TXNS, cfg)
        assert started.wait(10.0)
        follower = service.submit(TXNS, cfg)
        assert follower.via == "coalesced"
        service.cancel(primary.job_id)
        assert primary.wait(10.0)
        assert primary.state is JobState.CANCELLED
        # follower reruns on its own rather than inheriting the cancellation
        assert follower.wait(30.0)
        assert follower.state is JobState.DONE and follower.via == "run"
        assert len(calls) == 2


class TestEndToEnd:
    def test_eight_concurrent_jobs_match_direct_results(self, algo):
        ds = mushroom_like(scale=0.02, seed=5)
        configs = [
            MiningConfig(min_support=s, algorithm=a, backend="serial")
            for s in (0.45, 0.55, 0.65, 0.75)
            for a in ("yafim", "apriori")
        ]
        assert len(configs) == 8
        direct = {
            c.cache_key(): mine_frequent_itemsets(ds.transactions, config=c)
            for c in configs
        }
        with MiningService(n_workers=4) as svc:
            client = LocalClient(svc)
            results = {}

            def run_one(cfg):
                results[cfg.cache_key()] = client.mine(ds.transactions, cfg, timeout=120)

            threads = [threading.Thread(target=run_one, args=(c,)) for c in configs]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert len(results) == 8
            for key, result in results.items():
                assert result.itemsets == direct[key].itemsets
            states = svc.jobs_by_state()
            assert states["done"] == 8
            # one dataset shared across all eight jobs
            assert svc.datasets.stats()["entries"] == 1

    def test_memoized_rerun_is_5x_faster(self):
        ds = mushroom_like(scale=0.05, seed=5)
        cfg = MiningConfig(min_support=0.35, backend="serial")
        with MiningService(n_workers=1) as svc:
            client = LocalClient(svc)
            t0 = time.perf_counter()
            cold = client.mine(ds.transactions, cfg, timeout=120)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = client.mine(ds.transactions, cfg, timeout=120)
            warm_s = time.perf_counter() - t0
            assert warm.itemsets == cold.itemsets
            assert cold_s / max(warm_s, 1e-9) >= 5.0


class TestShutdown:
    def test_shutdown_cancels_queued_and_rejects_new(self, algo):
        release = threading.Event()
        name = "shutdown_algo"
        register_algorithm(
            name, lambda t, c: (release.wait(10.0), _result(t, c))[1], overwrite=True
        )
        try:
            svc = MiningService(n_workers=1)
            running = svc.submit(TXNS, MiningConfig(min_support=0.4, algorithm=name))
            queued = svc.submit(TXNS, CFG)
            release.set()
            svc.shutdown()
            assert queued.state is JobState.CANCELLED
            assert running.is_terminal
            with pytest.raises(ServeError):
                svc.submit(TXNS, CFG)
        finally:
            unregister_algorithm(name)

    def test_follower_settles_when_primary_cancelled_after_shutdown(self, algo):
        # once shutdown has run, workers are exiting and the pending-cancel
        # sweep is over — a follower promoted at that point must be settled,
        # not re-queued to wait on a worker that will never come
        started = threading.Event()
        release = threading.Event()

        def gated(txns, config):
            started.set()
            release.wait(10.0)
            return _result(txns, config)

        name = algo(gated, "late_shutdown_algo")
        svc = MiningService(n_workers=1)
        try:
            cfg = MiningConfig(min_support=0.4, algorithm=name)
            primary = svc.submit(TXNS, cfg)
            assert started.wait(10.0)
            follower = svc.submit(TXNS, cfg)
            assert follower.via == "coalesced"
            svc.shutdown(wait=False)  # primary is still running
            assert svc.cancel(primary.job_id) is True
            assert primary.wait(10.0)
            assert primary.state is JobState.CANCELLED
            assert follower.wait(10.0), "follower stranded PENDING after shutdown"
            assert follower.state is JobState.CANCELLED
            assert follower.error == "service shut down"
        finally:
            release.set()
            svc.shutdown()

    def test_metrics_shape(self, service):
        service.submit(TXNS, CFG).wait(30.0)
        m = service.metrics()
        assert {"queue_depth", "workers", "jobs_by_state", "dataset_cache",
                "result_cache", "context_pool", "recent_jobs"} <= set(m)
        assert m["jobs_by_state"]["done"] == 1
        assert 0.0 <= m["dataset_cache"]["hit_rate"] <= 1.0
        snap = m["recent_jobs"][0]
        assert snap["state"] == "done" and snap["num_itemsets"] > 0
