"""Consistent-hash ring: determinism, balance, stability under membership."""

import pytest

from repro.serve import HashRing, ServeError
from repro.serve.shard import _ring_hash

KEYS = [f"fingerprint-{i}" for i in range(400)]


class TestRingHash:
    def test_stable_across_calls(self):
        assert _ring_hash("abc") == _ring_hash("abc")

    def test_64_bit_range(self):
        assert 0 <= _ring_hash("abc") < 2**64

    def test_not_python_hash(self):
        # Python hash() is salted per process; a ring built on it would
        # re-home every dataset on restart
        assert _ring_hash("abc") != hash("abc")


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order must not matter
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_all_nodes_receive_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        homes = {ring.node_for(k) for k in KEYS}
        assert homes == {"s0", "s1", "s2", "s3"}

    def test_balance_with_virtual_nodes(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], replicas=64)
        counts = {n: 0 for n in ring.nodes}
        for k in KEYS:
            counts[ring.node_for(k)] += 1
        # virtual nodes keep the spread within a loose factor of fair share
        fair = len(KEYS) / len(counts)
        assert all(fair / 3 <= c <= fair * 3 for c in counts.values()), counts

    def test_remove_only_moves_removed_nodes_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("s2")
        for k, home in before.items():
            if home != "s2":
                assert ring.node_for(k) == home  # unaffected keys stay put
            else:
                assert ring.node_for(k) != "s2"

    def test_add_only_steals_some_keys(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("s3")
        moved = sum(1 for k in KEYS if ring.node_for(k) != before[k])
        # the new node takes roughly 1/4; far less than a full reshuffle
        assert 0 < moved < len(KEYS) / 2
        assert all(
            ring.node_for(k) in (before[k], "s3") for k in KEYS
        ), "keys moved to a node other than the new one"

    def test_preference_starts_at_home_and_is_distinct(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for k in KEYS[:50]:
            pref = ring.preference(k)
            assert pref[0] == ring.node_for(k)
            assert sorted(pref) == ring.nodes  # every node exactly once

    def test_preference_n_truncates(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        assert len(ring.preference("k", n=2)) == 2
        assert len(ring.preference("k", n=99)) == 4

    def test_add_remove_idempotent(self):
        ring = HashRing(["s0"])
        ring.add("s0")
        assert len(ring) == 1
        ring.remove("nope")
        assert len(ring) == 1

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(ServeError, match="empty"):
            ring.node_for("k")
        with pytest.raises(ServeError, match="empty"):
            ring.preference("k")

    def test_rejects_bad_replicas(self):
        with pytest.raises(ServeError, match="replicas"):
            HashRing(["s0"], replicas=0)
