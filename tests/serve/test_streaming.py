"""Streaming ingestion: coalesced appends, window policies, the change
feed, and the dataset-lifecycle bugfixes.

The two invariants pinned here end-to-end:

* the window is always bounded by its policies, and after ANY automatic
  retire no job is ever answered from a pre-retire result;
* a change-feed diff composed over any span of versions, applied to the
  full mining result of the first version, equals the full mining result
  of the last — the subscription surface never drifts from the oracle.
"""

import random
import threading
import time

import pytest

from repro.core.api import mine_frequent_itemsets
from repro.core.incremental import FamilyDiff
from repro.core.registry import MiningConfig
from repro.serve import (
    ApiError,
    DatasetRegistry,
    HttpClient,
    MiningServer,
    MiningService,
    dataset_fingerprint,
)

BASE = [("a", "b", "c")] * 4 + [("a", "c")] * 4 + [("b", "c")] * 4
DELTA = [("a", "b", "c")] * 4
CFG = MiningConfig(min_support=0.5, backend="serial")
INC = MiningConfig(min_support=0.5, backend="serial", incremental=True)


def oracle(txns, min_support=0.5):
    cfg = MiningConfig(min_support=min_support, backend="serial")
    return mine_frequent_itemsets(txns, config=cfg).itemsets


def payload_to_family(pairs):
    """Invert ``_family_payload``: [[items, count], ...] -> {tuple: count}."""
    return {tuple(items): count for items, count in pairs}


def apply_payload_diff(family, payload):
    out = dict(family)
    for items, _ in payload["removed"]:
        out.pop(tuple(items), None)
    for items, count in payload["added"]:
        out[tuple(items)] = count
    for items, _, new in payload["changed"]:
        out[tuple(items)] = new
    return out


@pytest.fixture
def service():
    with MiningService(n_workers=1, result_ttl_s=60.0) as svc:
        yield svc


class TestIngestBuffer:
    def test_small_appends_coalesce_until_flush_rows(self, service):
        service.create_dataset("w", BASE, flush_rows=6)
        info = service.append_dataset("w", DELTA[:2])
        assert info["flushed"] is False
        assert info["version"] == 1 and info["buffered"] == 2
        info = service.append_dataset("w", DELTA[:3])
        assert info["flushed"] is False and info["buffered"] == 5
        info = service.append_dataset("w", DELTA[:1])  # 6th row: trigger
        assert info["flushed"] is True
        assert info["version"] == 2 and info["buffered"] == 0
        assert info["n_transactions"] == len(BASE) + 6

    def test_explicit_flush_applies_the_buffer(self, service):
        service.create_dataset("w", BASE, flush_rows=100)
        assert service.append_dataset("w", DELTA)["flushed"] is False
        info = service.append_dataset("w", None, flush=True)
        assert info["flushed"] is True and info["version"] == 2
        assert info["n_transactions"] == len(BASE) + len(DELTA)
        # one window advance folded all staged rows: exactly one flush
        assert service.dataset_registry.stats()["flushes"] == 1

    def test_flush_with_nothing_staged_is_a_noop(self, service):
        service.create_dataset("w", BASE, flush_rows=100)
        info = service.append_dataset("w", None, flush=True)
        assert info["version"] == 1 and info["flushed"] is True

    def test_submit_flushes_for_read_your_writes(self, service):
        """A job submitted for the dataset must see every accepted append,
        staged or not."""
        service.create_dataset("w", BASE, flush_rows=100)
        service.append_dataset("w", DELTA)
        job = service.submit(None, CFG, dataset_id="w")
        assert job.wait(30.0)
        assert job.dataset_version == 2
        assert job.result.itemsets == oracle(BASE + DELTA)
        assert service.dataset_info("w")["buffered"] == 0

    def test_coalesced_flush_is_one_version_bump(self, service):
        service.create_dataset("w", BASE, flush_rows=4)
        for txn in DELTA:  # 4 one-row appends -> a single advance
            info = service.append_dataset("w", [txn])
        assert info["version"] == 2
        stats = service.dataset_registry.stats()
        assert stats["appends"] == 4 and stats["flushes"] == 1

    def test_age_trigger_fires_via_background_flusher(self, service):
        service.create_dataset("w", BASE, flush_rows=100, flush_age_s=0.05)
        assert service.append_dataset("w", DELTA)["flushed"] is False
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if service.dataset_info("w")["version"] == 2:
                break
            time.sleep(0.02)
        info = service.dataset_info("w")
        assert info["version"] == 2 and info["buffered"] == 0
        assert info["n_transactions"] == len(BASE) + len(DELTA)

    def test_empty_append_without_flush_rejected(self, service):
        service.create_dataset("w", BASE)
        with pytest.raises(ApiError):
            service.append_dataset("w", [])


class TestWindowPolicies:
    def test_max_window_bounds_the_dataset(self, service):
        service.create_dataset("w", BASE, max_window=len(BASE))
        info = service.append_dataset("w", DELTA)
        assert info["n_transactions"] == len(BASE)
        assert info["retired_transactions"] == len(DELTA)
        entry = service.dataset_registry.get("w")
        window = (BASE + DELTA)[len(DELTA):]
        assert list(entry.transactions) == window
        assert entry.fingerprint == dataset_fingerprint(window)

    def test_create_trims_oversized_initial_window(self, service):
        info = service.create_dataset("w", BASE + DELTA, max_window=6)
        assert info["n_transactions"] == 6
        entry = service.dataset_registry.get("w")
        assert list(entry.transactions) == (BASE + DELTA)[-6:]

    def test_max_age_retires_by_arrival_stamp(self):
        clock = [100.0]
        reg = DatasetRegistry()
        entry, _ = reg.create(
            "w", BASE, max_age_s=10.0, clock=lambda: clock[0]
        )
        clock[0] = 105.0
        with entry.lock:
            res = entry.append(DELTA)
        assert res.n_retired == 0
        clock[0] = 112.0  # BASE (t=100) expired, DELTA (t=105) alive
        with entry.lock:
            res = entry.append([("x", "y")])
        assert res.n_retired == len(BASE)
        assert list(entry.transactions) == DELTA + [("x", "y")]

    def test_window_never_empties_under_age_policy(self):
        clock = [0.0]
        reg = DatasetRegistry()
        entry, _ = reg.create(
            "w", BASE, max_age_s=1.0, clock=lambda: clock[0]
        )
        clock[0] = 1000.0  # everything expired
        with entry.lock:
            res = entry.append([])
        assert res is not None and len(entry.transactions) == 1

    def test_policy_retire_never_serves_stale(self, service):
        """Satellite invariant: after an automatic retire, the pre-retire
        memoized result must not answer any later submission."""
        service.create_dataset("w", BASE + DELTA, max_window=len(BASE) + len(DELTA))
        pre = service.submit(None, CFG, dataset_id="w")
        assert pre.wait(30.0)
        extra = [("b", "c")] * 6
        info = service.append_dataset("w", extra)
        assert info["retired_transactions"] == len(extra)
        post = service.submit(None, CFG, dataset_id="w")
        assert post.wait(30.0)
        assert post.via == "run"
        window = (BASE + DELTA + extra)[len(extra):]
        assert post.result.itemsets == oracle(window)

    def test_retire_clears_prefix_guard_and_warm_jobs_stay_correct(self, service):
        """The warm-miner path's O(1) prefix guard must fail closed across
        a retire — the next incremental job re-mines, never reuses a
        snapshot that is no longer a prefix."""
        service.create_dataset("w", BASE, max_window=len(BASE))
        first = service.submit(None, INC, dataset_id="w")
        assert first.wait(30.0)
        service.append_dataset("w", DELTA)  # retires len(DELTA) oldest
        entry = service.dataset_registry.get("w")
        assert set(entry.versions) == {entry.version}
        second = service.submit(None, INC, dataset_id="w")
        assert second.wait(30.0)
        assert second.result.itemsets == oracle((BASE + DELTA)[len(DELTA):])


class TestChangeFeed:
    def test_first_call_establishes_watch_with_empty_diff(self, service):
        service.create_dataset("w", BASE)
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        assert payload["version"] == 1 and payload["reset"] is False
        assert payload["added"] == [] and payload["removed"] == []
        assert payload["changed"] == []

    def test_diff_equals_set_difference_of_full_results(self, service):
        service.create_dataset("w", BASE)
        service.dataset_changes("w", since=1, min_support=0.5)  # watch
        service.append_dataset("w", DELTA)
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        assert payload["reset"] is False and payload["version"] == 2
        old, new = oracle(BASE), oracle(BASE + DELTA)
        assert payload_to_family(payload["added"]) == {
            i: c for i, c in new.items() if i not in old
        }
        assert payload_to_family(payload["removed"]) == {
            i: c for i, c in old.items() if i not in new
        }
        assert apply_payload_diff(old, payload) == new

    def test_multi_version_span_composes(self, service):
        service.create_dataset("w", BASE)
        service.dataset_changes("w", since=1, min_support=0.5)
        service.append_dataset("w", DELTA)
        service.append_dataset("w", [("b", "c")] * 8)
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        assert payload["version"] == 3
        final = oracle(BASE + DELTA + [("b", "c")] * 8)
        assert apply_payload_diff(oracle(BASE), payload) == final

    def test_uncovered_since_ships_reset_with_full_family(self, service):
        service.create_dataset("w", BASE)
        service.append_dataset("w", DELTA)
        # watch established only now, at version 2: version 1 is not in
        # its log, so since=1 cannot be answered with a diff
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        assert payload["reset"] is True
        assert payload_to_family(payload["family"]) == oracle(BASE + DELTA)

    def test_since_ahead_of_version_rejected(self, service):
        service.create_dataset("w", BASE)
        with pytest.raises(ApiError):
            service.dataset_changes("w", since=7, min_support=0.5)

    def test_long_poll_wakes_on_append(self, service):
        service.create_dataset("w", BASE)
        service.dataset_changes("w", since=1, min_support=0.5)

        def later():
            time.sleep(0.15)
            service.append_dataset("w", DELTA)

        t = threading.Thread(target=later)
        t.start()
        start = time.monotonic()
        payload = service.dataset_changes(
            "w", since=1, min_support=0.5, timeout_s=10.0
        )
        elapsed = time.monotonic() - start
        t.join()
        assert payload["version"] == 2
        assert elapsed < 5.0  # woke on notify, not on timeout

    def test_long_poll_timeout_returns_empty_diff(self, service):
        service.create_dataset("w", BASE)
        payload = service.dataset_changes(
            "w", since=1, min_support=0.5, timeout_s=0.1
        )
        assert payload["version"] == 1 and payload["reset"] is False

    def test_feed_spans_policy_retires(self, service):
        """Diffs must stay oracle-true when the advance includes an
        automatic retire (append + retire fold into one transition)."""
        service.create_dataset("w", BASE, max_window=len(BASE))
        service.dataset_changes("w", since=1, min_support=0.5)
        service.append_dataset("w", [("b", "c")] * 6)
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        assert payload["reset"] is False
        window = (BASE + [("b", "c")] * 6)[6:]
        assert apply_payload_diff(oracle(BASE), payload) == oracle(window)

    def test_watch_on_buffering_dataset_flushes_first(self, service):
        service.create_dataset("w", BASE, flush_rows=100)
        service.append_dataset("w", DELTA)  # staged
        payload = service.dataset_changes("w", since=1, min_support=0.5)
        # establishing the watch flushed the buffer: the baseline family
        # is the fully-applied window at version 2
        assert payload["version"] == 2
        assert service.dataset_info("w")["buffered"] == 0


class TestLifecycleBugfixes:
    def test_replace_retires_old_entry_before_invalidation(self, service):
        """Bugfix (a): a stale reference to the replaced entry must see
        the retired barrier (409), not silently mutate a zombie window."""
        service.create_dataset("w", BASE)
        stale = service.dataset_registry.get("w")
        service.create_dataset("w", DELTA, replace=True)
        assert stale.retired is True
        with pytest.raises(ApiError) as err:
            with stale.lock:
                stale.append([("x",)])
        assert err.value.status == 409 and err.value.code == "dataset_retired"
        # the live entry is untouched and serves the new contents
        job = service.submit(None, CFG, dataset_id="w")
        assert job.wait(30.0)
        assert job.result.itemsets == oracle(DELTA)

    def test_replace_wakes_long_pollers_with_409(self, service):
        service.create_dataset("w", BASE)
        service.dataset_changes("w", since=1, min_support=0.5)
        caught = []

        def poll():
            try:
                service.dataset_changes(
                    "w", since=1, min_support=0.5, timeout_s=10.0
                )
            except ApiError as exc:
                caught.append(exc)

        t = threading.Thread(target=poll)
        t.start()
        time.sleep(0.15)
        service.create_dataset("w", DELTA, replace=True)
        t.join(5.0)
        assert not t.is_alive()
        assert caught and caught[0].code == "dataset_retired"

    def test_poisoned_delta_leaves_entry_intact(self, service):
        """Bugfix (b): validate-and-hash BEFORE mutating — a delta that
        cannot be fingerprinted must not corrupt the window."""

        class Poison:
            def __str__(self):
                raise RuntimeError("unrenderable item")

        service.create_dataset("w", BASE)
        entry = service.dataset_registry.get("w")
        before_fp, before_n = entry.fingerprint, len(entry.transactions)
        with pytest.raises(ApiError):
            service.append_dataset("w", [("a", Poison())])
        assert entry.version == 1
        assert entry.fingerprint == before_fp
        assert len(entry.transactions) == before_n
        # the entry is still fully functional
        info = service.append_dataset("w", DELTA)
        assert info["version"] == 2
        assert entry.fingerprint == dataset_fingerprint(BASE + DELTA)

    def test_versions_stay_bounded_over_long_append_loop(self, service):
        """Bugfix (c): the version->fingerprint map must not grow one
        entry per append forever."""
        service.create_dataset("w", BASE)
        entry = service.dataset_registry.get("w")
        for i in range(50):
            service.append_dataset("w", [("a", "c")])
            assert len(entry.versions) == 1  # only the live version
        assert entry.version == 51

    def test_pinned_version_survives_until_job_finishes(self, service):
        service.create_dataset("w", BASE)
        entry = service.dataset_registry.get("w")
        job = service.submit(None, CFG, dataset_id="w")
        assert job.wait(30.0)
        # the pin was released when the job finished: appends prune v1
        service.append_dataset("w", DELTA)
        assert set(entry.versions) == {2}

    def test_registry_counters_are_lock_protected(self):
        """Bugfix (d): concurrent appends must not lose counter
        increments to a data race."""
        reg = DatasetRegistry()
        n_threads, per_thread = 8, 200

        def hammer():
            for _ in range(per_thread):
                reg.record_append()
                reg.record_flush()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = reg.stats()
        assert stats["appends"] == n_threads * per_thread
        assert stats["flushes"] == n_threads * per_thread


class TestRandomizedStreamOracle:
    """Satellite (e): a randomized append stream under a window policy,
    checked against a cold re-mine of the policy-trimmed window."""

    ITEMS = ["a", "b", "c", "d", "e", "f"]

    @pytest.mark.parametrize("store", ["bitmap", "trie", "flatdict"])
    def test_stream_matches_full_remine(self, store):
        rng = random.Random(42 + len(store))
        feed = [
            tuple(sorted(rng.sample(self.ITEMS, rng.randint(1, 4))))
            for _ in range(140)
        ]
        max_window = 40
        with MiningService(n_workers=1, result_ttl_s=60.0) as svc:
            svc.create_dataset("w", feed[:30], max_window=max_window)
            window = list(feed[:30])
            cfg = MiningConfig(
                min_support=0.3, backend="serial", incremental=True,
                candidate_store=store,
            )
            svc.dataset_changes(
                "w", since=1, min_support=0.3, candidate_store=store
            )
            family = oracle(window, 0.3)
            cursor, version = 30, 1
            while cursor < len(feed):
                step = rng.randint(1, 9)
                delta = feed[cursor:cursor + step]
                cursor += step
                svc.append_dataset("w", delta)
                window = (window + delta)[-max_window:]
                info = svc.dataset_info("w")
                assert info["n_transactions"] <= max_window  # never exceeds
                assert info["n_transactions"] == len(window)
                payload = svc.dataset_changes(
                    "w", since=version, min_support=0.3, candidate_store=store
                )
                version = payload["version"]
                assert payload["reset"] is False
                family = apply_payload_diff(family, payload)
                assert family == oracle(window, 0.3)
            job = svc.submit(None, cfg, dataset_id="w")
            assert job.wait(60.0)
            assert job.result.itemsets == oracle(window, 0.3)


class TestHttpStreaming:
    @pytest.fixture(scope="class")
    def server(self):
        with MiningServer(port=0, n_workers=2) as srv:
            yield srv

    def test_streaming_lifecycle_over_http(self, server):
        """The CI smoke shape: create with a policy, watch, append over
        HTTP, long-poll /changes, check the diff against full results."""
        client = HttpClient(server.url)
        info = client.create_dataset("stream-w", BASE, max_window=len(BASE) + 4)
        assert info["policy"]["max_window"] == len(BASE) + 4
        baseline = client.dataset_changes("stream-w", since=1, min_support=0.5)
        assert baseline["version"] == 1

        info = client.append_dataset("stream-w", DELTA)
        assert info["version"] == 2 and info["flushed"] is True
        payload = client.dataset_changes(
            "stream-w", since=1, min_support=0.5, timeout_s=5.0
        )
        assert payload["reset"] is False and payload["version"] == 2
        old, new = oracle(BASE), oracle(BASE + DELTA)
        assert payload_to_family(payload["added"]) == {
            i: c for i, c in new.items() if i not in old
        }
        assert apply_payload_diff(old, payload) == new

    def test_buffered_append_over_http(self, server):
        client = HttpClient(server.url)
        client.create_dataset("buf-w", BASE, flush_rows=8)
        info = client.append_dataset("buf-w", DELTA)
        assert info["flushed"] is False and info["buffered"] == len(DELTA)
        info = client.append_dataset("buf-w", DELTA)
        assert info["flushed"] is True and info["version"] == 2
        assert info["n_transactions"] == len(BASE) + 2 * len(DELTA)

    def test_explicit_flush_over_http(self, server):
        client = HttpClient(server.url)
        client.create_dataset("flush-w", BASE, flush_rows=100)
        client.append_dataset("flush-w", DELTA)
        info = client.append_dataset("flush-w", None, flush=True)
        assert info["flushed"] is True and info["version"] == 2

    def test_changes_rejects_bad_query(self, server):
        client = HttpClient(server.url)
        client.create_dataset("q-w", BASE)
        with pytest.raises(ApiError) as err:
            client._request(
                "GET", "/datasets/q-w/changes?since=1&min_support=0.5&bogus=1"
            )
        assert err.value.status == 400
        with pytest.raises(ApiError):
            client._request("GET", "/datasets/q-w/changes?since=1")  # no support


class TestWatchCli:
    def test_parser_wires_watch_subcommand(self):
        from repro.cli import build_parser, cmd_watch

        args = build_parser().parse_args(
            ["watch", "--dataset-id", "w", "--support", "0.5"]
        )
        assert args.func is cmd_watch
        assert args.dataset_id == "w" and args.support == 0.5
        assert args.candidate_store == "bitmap"
        assert args.poll_timeout == 20.0

    def test_submit_accepts_policy_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "submit", "--dataset-id", "w", "--input", "x.csv",
                "--support", "0.5", "--max-window", "100",
                "--max-age", "30", "--flush-rows", "8", "--flush-age", "2",
            ]
        )
        assert args.max_window == 100 and args.max_age == 30.0
        assert args.flush_rows == 8 and args.flush_age == 2.0
